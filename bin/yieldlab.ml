(* The yieldlab command-line interface.

   Subcommands cover the flow stage by stage:
     ota-eval   evaluate one OTA sizing at transistor level
     corners    the same design across process corners
     mc         Monte Carlo analysis of one design against a spec
     optimize   the WBGA multi-objective optimisation alone
     flow       the full model-generation flow; writes the .tbl tables
     design     yield-targeted design query against saved tables
     filter     the Section 5 filter design from an OTA description
     netlist    parse a SPICE-like netlist, solve DC, print the bias point
     lint       preflight static analysis of netlists, .tbl models, configs
     serve      long-lived table server (deadlines, shedding, hot reload)
     loadgen    closed-loop bench / smoke probe against a running server *)

module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Filter = Yield_circuits.Filter
module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Report = Yield_core.Report
module Perf_model = Yield_behavioural.Perf_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target
module Variation = Yield_process.Variation
module Corner = Yield_process.Corner
module Montecarlo = Yield_process.Montecarlo
module Tech = Yield_process.Tech
module Wbga = Yield_ga.Wbga
module Ga = Yield_ga.Ga
module Rng = Yield_stats.Rng
module Dcop = Yield_spice.Dcop
module Netlist = Yield_spice.Netlist
module Netlist_ast = Yield_spice.Netlist_ast

module Obs = Yield_obs.Obs
module Json = Yield_obs.Json
module Fault = Yield_resilience.Fault
module Atomic_io = Yield_resilience.Atomic_io
module Diagnostic = Yield_analyse.Diagnostic
module Netlist_lint = Yield_analyse.Netlist_lint
module Table_lint = Yield_analyse.Table_lint
module Config_lint = Yield_analyse.Config_lint
module Ac_tran_lint = Yield_analyse.Ac_tran_lint
module Corner_lint = Yield_analyse.Corner_lint
module Va_lint = Yield_analyse.Va_lint
module Baseline = Yield_analyse.Baseline
module Sarif = Yield_analyse.Sarif

open Cmdliner

(* ---------- telemetry / resilience flags (shared by every subcommand) ---------- *)

type obs_opts = {
  trace : string option;
  metrics : string option;
  trace_stream : string option;
  span_sample : string option;
  snapshot_every : float option;
  verbose : bool;
  fault_spec : string option;
  jobs : int option;
}

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.json"
          ~doc:
            "write a Chrome trace_event file of the run's spans (open in \
             chrome://tracing or ui.perfetto.dev)")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE.jsonl"
          ~doc:
            "write a JSONL log of counters, histogram summaries and span \
             events")
  in
  let trace_stream =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-stream" ] ~docv:"FILE"
          ~doc:
            "stream every span event to FILE as it happens (crash-tolerant, \
             one flushed line per event): $(b,.jsonl) appends JSONL lines, \
             any other $(b,.json) grows a Chrome trace array.  Unlike \
             $(b,--trace)/$(b,--metrics), the stream sees the complete \
             event log even when it exceeds the in-memory span window")
  in
  let span_sample =
    Arg.(
      value
      & opt (some string) None
      & info [ "span-sample" ] ~docv:"SPEC"
          ~doc:
            "thin high-frequency spans deterministically, e.g. \
             'mc.batch=0.1;exec.*=0'.  NAME=RATE clauses separated by ';' \
             or ','; a trailing $(b,*) matches by prefix.  Decisions hash \
             the span's (name, key) only, so the kept set is identical at \
             any $(b,--jobs) count.  Metrics still see every span")
  in
  let snapshot_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "snapshot-every" ] ~docv:"SECONDS"
          ~doc:
            "with $(b,--trace-stream), also append a metrics-delta snapshot \
             line every SECONDS seconds (progress counters survive a crash)")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"print spans live to stderr and a metrics summary at exit")
  in
  let fault_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-spec" ] ~docv:"SPEC"
          ~doc:
            "arm deterministic fault injection, e.g. \
             'dcop.solve:rate=0.2,seed=42;tbl.write:at=1'.  Points: \
             dcop.solve, dcop.newton, dcop.gmin, ac.solve, mc.sample, \
             tbl.write, flow.wbga.generation, flow.mc.point, serve.handler, \
             serve.accept, serve.reload.  Schedules: rate= (with optional \
             seed=), count=, every=, at=")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "evaluate over N domains; every parallel stage (WBGA, front \
             re-simulation, Monte Carlo) obeys the same setting and results \
             are identical for any N.  Default: the $(b,YIELDLAB_JOBS) \
             environment variable, else the recommended domain count; 1 \
             runs serially")
  in
  Term.(
    const (fun trace metrics trace_stream span_sample snapshot_every verbose
               fault_spec jobs ->
        {
          trace;
          metrics;
          trace_stream;
          span_sample;
          snapshot_every;
          verbose;
          fault_spec;
          jobs;
        })
    $ trace $ metrics $ trace_stream $ span_sample $ snapshot_every $ verbose
    $ fault_spec $ jobs)

(* run a subcommand under the telemetry options, flushing the sinks on the
   way out (also when the command raises) *)
let with_obs opts run =
  Obs.set_verbose opts.verbose;
  (* record the global flag before any subcommand reads the config: every
     Yield_exec.Jobs.resolve () from here on sees it *)
  Yield_exec.Jobs.set_requested opts.jobs;
  (match opts.span_sample with
  | None -> ()
  | Some spec -> begin
      match Obs.set_span_sample spec with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "yieldlab: bad --span-sample: %s\n" msg;
          exit 2
    end);
  (match opts.snapshot_every with
  | Some s when s <= 0. ->
      Printf.eprintf "yieldlab: --snapshot-every must be positive\n";
      exit 2
  | Some _ when opts.trace_stream = None ->
      Printf.eprintf "yieldlab: --snapshot-every needs --trace-stream\n";
      exit 2
  | Some _ | None -> ());
  (match opts.trace_stream with
  | None -> ()
  | Some path -> begin
      (* armed before the run so the CLI flags win over any
         YIELDLAB_TRACE_STREAM the flow config would apply *)
      try Obs.start_stream ?snapshot_every_s:opts.snapshot_every ~path ()
      with Sys_error msg ->
        Printf.eprintf "yieldlab: cannot open --trace-stream: %s\n" msg;
        exit 1
    end);
  (match opts.fault_spec with
  | None -> ()
  | Some spec -> begin
      (* static validation first: arming registers the named points, so a
         typo would otherwise silently create a schedule that never fires *)
      let diags = Config_lint.check_fault_spec spec in
      List.iter
        (fun d -> Printf.eprintf "yieldlab: %s\n" (Diagnostic.to_text d))
        diags;
      if Diagnostic.count Diagnostic.Error diags > 0 then exit 2;
      match Fault.arm_spec spec with
      | Ok () ->
          List.iter
            (fun (name, mode) ->
              Printf.eprintf "yieldlab: fault armed: %s %s\n" name
                (Fault.mode_to_string mode))
            (Fault.armed ())
      | Error msg ->
          Printf.eprintf "yieldlab: bad --fault-spec: %s\n" msg;
          exit 2
    end);
  let flush () =
    (* the stream first: its final snapshot and metric lines must include
       everything the run recorded *)
    Obs.stop_stream ();
    (try Obs.flush ?trace:opts.trace ?metrics:opts.metrics ()
     with Sys_error msg ->
       Printf.eprintf "yieldlab: cannot write telemetry: %s\n" msg;
       exit 1);
    if opts.verbose then prerr_string (Obs.summary ())
  in
  Fun.protect ~finally:flush (fun () ->
      try run ()
      with Fault.Injected what ->
        (* an armed crash point fired: behave like a kill, but exit cleanly
           enough that the telemetry sinks above still flush *)
        Printf.eprintf "yieldlab: simulated crash (fault injected): %s\n" what;
        10)

let obs_cmd info term = Cmd.v info Term.(const with_obs $ obs_term $ term)

(* ---------- shared arguments ---------- *)

let um = 1e-6

let param_term =
  let doc name = Arg.info [ name ] ~docv:"UM" ~doc:(name ^ " in micrometres") in
  let dim name default =
    Arg.(value & opt float default & doc name)
  in
  let combine w1 l1 w2 l2 w3 l3 w4 l4 =
    Ota.clamp_params
      {
        Ota.w1 = w1 *. um;
        l1 = l1 *. um;
        w2 = w2 *. um;
        l2 = l2 *. um;
        w3 = w3 *. um;
        l3 = l3 *. um;
        w4 = w4 *. um;
        l4 = l4 *. um;
      }
  in
  Term.(
    const combine $ dim "w1" 30. $ dim "l1" 1. $ dim "w2" 30. $ dim "l2" 1.
    $ dim "w3" 30. $ dim "l3" 1. $ dim "w4" 30. $ dim "l4" 1.)

let seed_term =
  Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"N" ~doc:"random seed")

let samples_term default =
  Arg.(
    value & opt int default
    & info [ "samples" ] ~docv:"N" ~doc:"Monte Carlo sample count")

let tables_dir_term =
  Arg.(
    value & opt string "."
    & info [ "tables" ] ~docv:"DIR" ~doc:"directory holding the .tbl models")

let print_perf (p : Tb.perf) =
  Printf.printf "gain          %8.2f dB\n" p.Tb.gain_db;
  Printf.printf "phase margin  %8.2f deg\n" p.Tb.phase_margin_deg;
  Printf.printf "unity gain    %8s Hz\n" (Report.si p.Tb.unity_gain_hz);
  Printf.printf "f3db          %8s Hz\n" (Report.si p.Tb.f3db_hz);
  Printf.printf "rout (est)    %8s Ohm\n" (Report.si p.Tb.rout_est)

(* ---------- ota-eval ---------- *)

let ota_eval params show_netlist =
  (match Tb.evaluate params with
  | Some perf -> print_perf perf
  | None -> prerr_endline "evaluation failed (DC non-convergence?)");
  if show_netlist then begin
    let circuit, _ = Tb.build params in
    print_newline ();
    print_string (Netlist.to_string circuit)
  end;
  0

let ota_eval_cmd =
  let netlist_flag =
    Arg.(value & flag & info [ "netlist" ] ~doc:"also print the testbench netlist")
  in
  obs_cmd
    (Cmd.info "ota-eval" ~doc:"evaluate one OTA sizing at transistor level")
    Term.(const (fun p n () -> ota_eval p n) $ param_term $ netlist_flag)

(* ---------- miller-eval ---------- *)

let miller_eval params =
  let module Mtb = Yield_circuits.Miller_testbench in
  let module Gtb = Yield_circuits.Testbench in
  let conditions =
    { Gtb.default_conditions with Gtb.min_unity_gain_hz = 5e6 }
  in
  match Mtb.evaluate ~conditions params with
  | Some p ->
      Printf.printf "gain          %8.2f dB\n" p.Gtb.gain_db;
      Printf.printf "phase margin  %8.2f deg\n" p.Gtb.phase_margin_deg;
      Printf.printf "unity gain    %8s Hz\n" (Report.si p.Gtb.unity_gain_hz);
      Printf.printf "rout (est)    %8s Ohm\n" (Report.si p.Gtb.rout_est);
      0
  | None ->
      prerr_endline "evaluation failed (DC non-convergence?)";
      1

let miller_param_term =
  let doc name = Arg.info [ name ] ~docv:"UM" ~doc:(name ^ " in micrometres") in
  let dim name default = Arg.(value & opt float default & doc name) in
  let combine w1 l1 w2 l2 w3 l3 w4 l4 =
    {
      Yield_circuits.Miller.w1 = w1 *. um;
      l1 = l1 *. um;
      w2 = w2 *. um;
      l2 = l2 *. um;
      w3 = w3 *. um;
      l3 = l3 *. um;
      w4 = w4 *. um;
      l4 = l4 *. um;
    }
  in
  Term.(
    const combine $ dim "w1" 20. $ dim "l1" 1. $ dim "w2" 60. $ dim "l2" 0.5
    $ dim "w3" 30. $ dim "l3" 1. $ dim "w4" 30. $ dim "l4" 1.)

let miller_eval_cmd =
  obs_cmd
    (Cmd.info "miller-eval"
       ~doc:"evaluate a two-stage Miller OTA sizing at transistor level")
    Term.(const (fun p () -> miller_eval p) $ miller_param_term)

(* ---------- corners ---------- *)

let corners params =
  List.iter
    (fun corner ->
      let tech = Corner.apply Variation.default_spec corner Tech.c35 in
      let conditions = { Tb.default_conditions with Tb.tech } in
      match Tb.evaluate ~conditions params with
      | Some p ->
          Printf.printf "%-3s gain %6.2f dB  pm %6.2f deg  fu %8s Hz\n"
            (Corner.to_string corner)
            p.Tb.gain_db p.Tb.phase_margin_deg
            (Report.si p.Tb.unity_gain_hz)
      | None ->
          Printf.printf "%-3s evaluation failed\n" (Corner.to_string corner))
    Corner.all;
  0

let corners_cmd =
  obs_cmd
    (Cmd.info "corners" ~doc:"evaluate a design across process corners")
    Term.(const (fun p () -> corners p) $ param_term)

(* ---------- mc ---------- *)

let mc params samples seed min_gain min_pm =
  let rng = Rng.create seed in
  let outcome =
    Yield_exec.Pool.with_pool ~jobs:(Yield_exec.Jobs.resolve ()) (fun pool ->
        Montecarlo.run_pool_counted ~pool ~samples ~rng (fun r ->
            Tb.evaluate_sampled ~spec:Variation.default_spec ~rng:r params))
  in
  let results = outcome.Montecarlo.results in
  if Array.length results = 0 then begin
    Printf.eprintf "%s\n"
      (Montecarlo.yield_outcome_to_string
         (Montecarlo.No_valid_samples
            {
              attempted = outcome.Montecarlo.attempted;
              failed = outcome.Montecarlo.failed;
            }));
    1
  end
  else begin
    let gains = Array.map (fun p -> p.Tb.gain_db) results in
    let pms = Array.map (fun p -> p.Tb.phase_margin_deg) results in
    let stats name xs =
      let s = Yield_stats.Summary.of_array xs in
      Printf.printf "%-6s mean %8.3f  sd %7.4f  min %8.3f  max %8.3f\n" name
        (Yield_stats.Summary.mean s)
        (Yield_stats.Summary.stddev s)
        (Yield_stats.Summary.min_value s)
        (Yield_stats.Summary.max_value s)
    in
    Printf.printf "%d successful samples (%d attempted, %d failed)\n"
      (Array.length results) outcome.Montecarlo.attempted
      outcome.Montecarlo.failed;
    stats "gain" gains;
    stats "pm" pms;
    (match (min_gain, min_pm) with
    | Some g, Some p ->
        let spec = { Yield_target.min_gain_db = g; min_pm_deg = p } in
        let outcome_yield =
          Montecarlo.yield_of_counted
            (fun r ->
              Yield_target.meets spec ~gain_db:r.Tb.gain_db
                ~pm_deg:r.Tb.phase_margin_deg)
            outcome
        in
        Printf.printf "yield vs (gain>%.1f, pm>%.1f): %s\n" g p
          (Montecarlo.yield_outcome_to_string outcome_yield)
    | _ -> ());
    0
  end

let mc_cmd =
  let gain =
    Arg.(value & opt (some float) None & info [ "min-gain" ] ~docv:"DB" ~doc:"gain spec")
  in
  let pm =
    Arg.(value & opt (some float) None & info [ "min-pm" ] ~docv:"DEG" ~doc:"phase-margin spec")
  in
  obs_cmd
    (Cmd.info "mc" ~doc:"Monte Carlo analysis of one design")
    Term.(
      const (fun p n s g m () -> mc p n s g m)
      $ param_term $ samples_term 200 $ seed_term $ gain $ pm)

(* ---------- optimize ---------- *)

let optimize population generations seed out =
  let config =
    { Ga.default_config with Ga.population_size = population; generations }
  in
  let conditions = Tb.default_conditions in
  let evaluate params =
    match Tb.evaluate ~conditions (Ota.params_of_array params) with
    | Some p when Tb.feasible conditions p -> Some (Tb.objectives p)
    | Some _ | None -> None
  in
  let result =
    Yield_exec.Pool.with_pool ~jobs:(Yield_exec.Jobs.resolve ()) (fun pool ->
        Wbga.run ~config ~pool ~param_ranges:Ota.param_ranges
          ~objectives:
            [|
              { Wbga.name = "gain"; maximise = true };
              { Wbga.name = "pm"; maximise = true };
            |]
          ~rng:(Rng.create seed) ~evaluate ())
  in
  Printf.printf "%d evaluations, %d infeasible, front %d\n"
    result.Wbga.evaluations result.Wbga.failures
    (Array.length result.Wbga.front);
  Array.iteri
    (fun i (e : Wbga.entry) ->
      if i mod (Stdlib.max 1 (Array.length result.Wbga.front / 25)) = 0 then
        Printf.printf "gain %6.2f dB  pm %6.2f deg\n" e.Wbga.objectives.(0)
          e.Wbga.objectives.(1))
    result.Wbga.front;
  (match out with
  | Some path ->
      let columns =
        Array.append [| "gain"; "pm" |] (Array.map (fun (r : Yield_ga.Genome.range) -> r.Yield_ga.Genome.name) Ota.param_ranges)
      in
      let rows =
        Array.map
          (fun (e : Wbga.entry) -> Array.append e.Wbga.objectives e.Wbga.params)
          result.Wbga.front
      in
      Yield_table.Tbl_io.write ~path (Yield_table.Tbl_io.create ~columns ~rows);
      Printf.printf "front written to %s\n" path
  | None -> ());
  0

let optimize_cmd =
  let pop =
    Arg.(value & opt int 100 & info [ "population" ] ~docv:"N" ~doc:"population size")
  in
  let gens =
    Arg.(value & opt int 100 & info [ "generations" ] ~docv:"N" ~doc:"generation count")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"write the front as a .tbl file")
  in
  obs_cmd
    (Cmd.info "optimize" ~doc:"run the WBGA multi-objective optimisation")
    Term.(
      const (fun p g s o () -> optimize p g s o)
      $ pop $ gens $ seed_term $ out)

(* ---------- flow ---------- *)

let flow fast topology out_dir checkpoint_dir resume no_preflight prescreen
    solver =
  let config = if fast then Config.fast_scale else Config.paper_scale in
  let config =
    {
      config with
      Config.jobs = Yield_exec.Jobs.resolve ();
      solver;
      telemetry = Config.telemetry_of_env ();
      prescreen;
    }
  in
  let preflight = not no_preflight in
  let flow =
    match topology with
    | `Ota ->
        Flow.run ~log:print_endline ~preflight ?checkpoint_dir ~resume config
    | `Miller ->
        let module Miller_flow = Flow.Make (Yield_circuits.Miller) in
        let config =
          {
            config with
            Config.conditions =
              {
                Yield_circuits.Testbench.default_conditions with
                Yield_circuits.Testbench.min_unity_gain_hz = 5e6;
              };
          }
        in
        Miller_flow.run ~log:print_endline ~preflight ?checkpoint_dir ~resume
          config
  in
  let written = Flow.save_tables flow ~dir:out_dir in
  Printf.printf "front %d points, %d variation points\n"
    (Array.length flow.Flow.front_points)
    (Array.length flow.Flow.var_points);
  Printf.printf
    "total simulations: %d (optimisation %d, front %d, mc %d)\n"
    (Flow.total_sims flow.Flow.counts)
    flow.Flow.counts.Flow.optimisation_sims flow.Flow.counts.Flow.front_sims
    flow.Flow.counts.Flow.mc_sims;
  (match flow.Flow.prescreen with
  | None -> ()
  | Some ps ->
      Printf.printf
        "prescreen: %d analysed, %d provably-fail (MC skipped), %d \
         provably-pass (%d budget-shrunk), %d undecided\n"
        ps.Flow.analysed ps.Flow.fail_skipped ps.Flow.provably_passed
        ps.Flow.pass_shrunk ps.Flow.undecided);
  Printf.printf "timings: optimisation %.1f s, mc %.1f s, total %.1f s\n"
    flow.Flow.timings.Flow.optimisation_s flow.Flow.timings.Flow.mc_s
    flow.Flow.timings.Flow.total_s;
  List.iter (Printf.printf "wrote %s\n") written;
  0

let flow_cmd =
  let fast = Arg.(value & flag & info [ "fast" ] ~doc:"reduced-scale run") in
  let topology =
    Arg.(
      value
      & opt (enum [ ("ota", `Ota); ("miller", `Miller) ]) `Ota
      & info [ "topology" ] ~docv:"NAME" ~doc:"circuit topology (ota or miller)")
  in
  let out_dir =
    Arg.(value & opt string "." & info [ "out-dir" ] ~docv:"DIR" ~doc:"where to write the model tables")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "persist per-stage progress (WBGA generations, Monte Carlo \
             points) under DIR; combine with $(b,--resume) to continue a \
             killed run")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "continue from the state in $(b,--checkpoint) DIR; the resumed \
             run is bit-identical to an uninterrupted one")
  in
  let no_preflight =
    Arg.(
      value & flag
      & info [ "no-preflight" ]
          ~doc:
            "skip the preflight static analysis (config cross-checks, \
             checkpoint fingerprint dry-run, netlist lint) that otherwise \
             aborts the run on error-severity findings")
  in
  let prescreen_flag =
    Arg.(
      value & flag
      & info [ "prescreen" ]
          ~doc:
            "corner-proof Monte Carlo pre-screen: push every analysed \
             Pareto point's parameter box through the interval DC/AC model \
             first — provably-fail points skip their MC batch (yield 0 with \
             the enclosure as provenance), provably-pass points may run a \
             reduced budget ($(b,--prescreen-budget)), undecided points run \
             unchanged")
  in
  let prescreen_k =
    Arg.(
      value
      & opt float Config.no_prescreen.Config.k_sigma
      & info [ "prescreen-k" ] ~docv:"SIGMA"
          ~doc:
            "truncate the proof's parameter box at K sigmas; verdicts about \
             unbounded Monte Carlo hold up to the normal mass outside the \
             box (see DESIGN.md)")
  in
  let prescreen_min_gain =
    Arg.(
      value
      & opt float Config.no_prescreen.Config.min_gain_db
      & info [ "prescreen-min-gain" ] ~docv:"DB"
          ~doc:"spec window floor on DC gain for the Y-code verdicts")
  in
  let prescreen_min_pm =
    Arg.(
      value
      & opt float Config.no_prescreen.Config.min_pm_deg
      & info [ "prescreen-min-pm" ] ~docv:"DEG"
          ~doc:"spec window floor on phase margin for the Y-code verdicts")
  in
  let prescreen_budget =
    Arg.(
      value
      & opt float Config.no_prescreen.Config.pass_budget_frac
      & info [ "prescreen-budget" ] ~docv:"FRAC"
          ~doc:
            "fraction of the MC budget a provably-pass point still runs \
             (in (0, 1]; 1 disables the shrink)")
  in
  let prescreen_term =
    let build enabled k g pm b =
      if not enabled then Config.prescreen_of_env ()
      else
        {
          Config.enabled = true;
          k_sigma = k;
          min_gain_db = g;
          min_pm_deg = pm;
          pass_budget_frac = (if b > 0. && b <= 1. then b else 1.);
        }
    in
    Term.(
      const build $ prescreen_flag $ prescreen_k $ prescreen_min_gain
      $ prescreen_min_pm $ prescreen_budget)
  in
  let solver =
    Arg.(
      value
      & opt string (Config.solver_of_env ())
      & info [ "solver" ] ~docv:"NAME"
          ~doc:
            "linear-solver backend for the Monte Carlo inner loop: \
             $(b,dense) (the default; bit-identical to historical runs) or \
             $(b,csr) (sparse LU with a cached symbolic factorisation per \
             topology).  Defaults to \\$YIELDLAB_SOLVER when set.  The \
             optimisation and nominal-front stages always run dense, so \
             perf_model.tbl is solver-independent")
  in
  obs_cmd
    (Cmd.info "flow" ~doc:"run the full model-generation flow (Figure 3)")
    Term.(
      const (fun f t o c r n p s () -> flow f t o c r n p s)
      $ fast $ topology $ out_dir $ checkpoint_dir $ resume $ no_preflight
      $ prescreen_term $ solver)

(* ---------- design ---------- *)

(* shared preflight of the table-consuming commands: refuse to run on
   error-severity findings, pass warnings through on stderr *)
let model_preflight ?spec ~tables_dir () =
  let diags = Flow.lint_models ?spec ~dir:tables_dir ~control:"3E" () in
  if Diagnostic.count Diagnostic.Error diags > 0 then begin
    prerr_endline (Diagnostic.list_to_text diags);
    prerr_endline
      "preflight found errors in the saved models — fix them or pass \
       --no-preflight";
    false
  end
  else begin
    List.iter
      (fun d -> prerr_endline ("preflight: " ^ Diagnostic.to_text d))
      diags;
    true
  end

let no_preflight_term =
  Arg.(
    value & flag
    & info [ "no-preflight" ]
        ~doc:
          "skip the static analysis of the saved model tables (and the \
           module they imply) that otherwise aborts on error-severity \
           findings")

let design tables_dir min_gain min_pm no_preflight =
  let spec = { Yield_target.min_gain_db = min_gain; min_pm_deg = min_pm } in
  if (not no_preflight) && not (model_preflight ~spec ~tables_dir ()) then 2
  else
  match Flow.load_models ~dir:tables_dir ~control:"3E" with
  | exception Sys_error e ->
      prerr_endline ("cannot load tables: " ^ e);
      1
  | perf, var -> begin
      let model = Macromodel.create perf var in
      match Yield_target.plan model spec with
      | Error e ->
          prerr_endline e;
          1
      | Ok plan ->
          let p = plan.Yield_target.proposal in
          Printf.printf "variation at spec:  dGain %.2f %%, dPM %.2f %%\n"
            p.Macromodel.gain_delta_pct p.Macromodel.pm_delta_pct;
          Printf.printf "inflated targets:   gain %.2f dB, pm %.2f deg\n"
            p.Macromodel.proposed_gain_db p.Macromodel.proposed_pm_deg;
          Printf.printf "table design claim: gain %.2f dB, pm %.2f deg\n"
            p.Macromodel.design.Perf_model.gain_db
            p.Macromodel.design.Perf_model.pm_deg;
          Array.iteri
            (fun i name ->
              Printf.printf "  %-3s = %s m\n" name
                (Report.si p.Macromodel.design.Perf_model.params.(i)))
            Ota.param_names;
          Printf.printf "predicted yield: %.2f %%\n"
            (100. *. Yield_target.predicted_yield plan);
          0
    end

let design_cmd =
  let gain =
    Arg.(required & opt (some float) None & info [ "min-gain" ] ~docv:"DB" ~doc:"gain spec (dB)")
  in
  let pm =
    Arg.(required & opt (some float) None & info [ "min-pm" ] ~docv:"DEG" ~doc:"phase-margin spec (deg)")
  in
  obs_cmd
    (Cmd.info "design" ~doc:"yield-targeted design query against saved tables")
    Term.(
      const (fun d g p n () -> design d g p n)
      $ tables_dir_term $ gain $ pm $ no_preflight_term)

(* ---------- filter ---------- *)

let filter_design gain_db rout seed =
  let amp = { Filter.gain_db; rout } in
  let r = Filter.optimise amp Filter.default_spec (Rng.create seed) in
  Printf.printf "C1 = %sF, C2 = %sF, C3 = %sF\n"
    (Report.si r.Filter.best.Filter.c1)
    (Report.si r.Filter.best.Filter.c2)
    (Report.si r.Filter.best.Filter.c3);
  Printf.printf "passband margin %.2f dB, stopband margin %.2f dB (meets spec: %b)\n"
    r.Filter.best_check.Filter.passband_margin_db
    r.Filter.best_check.Filter.stopband_margin_db
    r.Filter.best_check.Filter.meets_spec;
  if r.Filter.best_check.Filter.meets_spec then 0 else 1

let filter_cmd =
  let gain =
    Arg.(value & opt float 53. & info [ "gain" ] ~docv:"DB" ~doc:"OTA open-loop gain")
  in
  let rout =
    Arg.(value & opt float 2e6 & info [ "rout" ] ~docv:"OHM" ~doc:"OTA output resistance")
  in
  obs_cmd
    (Cmd.info "filter" ~doc:"design the Section 5 anti-aliasing filter")
    Term.(const (fun g r s () -> filter_design g r s) $ gain $ rout $ seed_term)

(* ---------- step ---------- *)

let step params amplitude =
  match Tb.step_perf ~amplitude params with
  | None ->
      prerr_endline "step response failed";
      1
  | Some s ->
      Printf.printf "slew rate      %8.2f V/us\n" s.Tb.slew_v_per_us;
      Printf.printf "1%% settling    %8s\n"
        (match s.Tb.settling_1pct_s with
        | Some t -> Report.si t ^ "s"
        | None -> "not reached");
      Printf.printf "overshoot      %8.2f %%\n" s.Tb.overshoot_pct;
      Printf.printf "follower error %8.2f mV\n" (1e3 *. s.Tb.final_error_v);
      0

let step_cmd =
  let amplitude =
    Arg.(value & opt float 0.5 & info [ "amplitude" ] ~docv:"V" ~doc:"input step size")
  in
  obs_cmd
    (Cmd.info "step" ~doc:"unity-gain follower step response (transient)")
    Term.(const (fun p a () -> step p a) $ param_term $ amplitude)

(* ---------- noise ---------- *)

let noise params =
  match Tb.input_referred_noise params with
  | None ->
      prerr_endline "noise analysis failed";
      1
  | Some (pairs, rms) ->
      Printf.printf "input-referred noise (to the unity-gain frequency): %.2f uVrms\n"
        (rms *. 1e6);
      Array.iteri
        (fun i (f, psd) ->
          if i mod 8 = 0 then
            Printf.printf "  %8sHz  %10.2f nV/rtHz\n" (Report.si f)
              (sqrt psd *. 1e9))
        pairs;
      0

let noise_cmd =
  obs_cmd
    (Cmd.info "noise" ~doc:"input-referred noise of a design")
    Term.(const (fun p () -> noise p) $ param_term)

(* ---------- sensitivity ---------- *)

let sensitivity params =
  let spec = Variation.default_spec in
  let run name eval =
    match Yield_process.Sensitivity.analyse ~spec ~eval with
    | Error e ->
        Printf.printf "%s: %s\n" name e;
        1
    | Ok results ->
        Printf.printf "%s variance decomposition:\n" name;
        List.iter
          (fun (r : Yield_process.Sensitivity.result) ->
            Printf.printf "  %-7s %5.1f %%  (%+.4g per sigma)\n"
              (Yield_process.Sensitivity.to_string
                 r.Yield_process.Sensitivity.component)
              (100. *. r.Yield_process.Sensitivity.variance_share)
              r.Yield_process.Sensitivity.per_sigma)
          results;
        0
  in
  let gain_eval draw =
    Option.map (fun p -> p.Tb.gain_db) (Tb.evaluate_with_draw ~spec ~draw params)
  in
  let pm_eval draw =
    Option.map
      (fun p -> p.Tb.phase_margin_deg)
      (Tb.evaluate_with_draw ~spec ~draw params)
  in
  let a = run "gain" gain_eval in
  let b = run "phase margin" pm_eval in
  if a = 0 && b = 0 then 0 else 1

let sensitivity_cmd =
  obs_cmd
    (Cmd.info "sensitivity" ~doc:"global-variation sensitivity of a design")
    Term.(const (fun p () -> sensitivity p) $ param_term)

(* ---------- export-va ---------- *)

let export_va tables_dir out_dir no_preflight =
  if (not no_preflight) && not (model_preflight ~tables_dir ()) then 2
  else
  match Flow.load_models ~dir:tables_dir ~control:"3E" with
  | exception Sys_error e ->
      prerr_endline ("cannot load tables: " ^ e);
      1
  | perf, var ->
      let model = Macromodel.create perf var in
      Yield_resilience.Atomic_io.mkdir_p out_dir;
      let written = Yield_behavioural.Verilog_a.save model ~dir:out_dir in
      List.iter (Printf.printf "wrote %s\n") written;
      0

let export_va_cmd =
  let out_dir =
    Arg.(value & opt string "." & info [ "out-dir" ] ~docv:"DIR" ~doc:"output directory")
  in
  obs_cmd
    (Cmd.info "export-va"
       ~doc:"emit the Verilog-A behavioural module and its table files")
    Term.(
      const (fun t o n () -> export_va t o n)
      $ tables_dir_term $ out_dir $ no_preflight_term)

(* ---------- netlist ---------- *)

let run_analysis circuit op analysis =
  match analysis with
  | Netlist.Op -> Format.printf "%a@." (Dcop.pp circuit) op
  | Netlist.Ac_analysis { per_decade; f_lo; f_hi; out } ->
      let freqs =
        Yield_spice.Ac.default_freqs ~per_decade ~f_lo ~f_hi ()
      in
      let bode = Yield_spice.Ac.transfer_by_name circuit op ~out ~freqs in
      let mags = Yield_spice.Measure.magnitudes_db bode in
      let phases = Yield_spice.Measure.phases_deg_unwrapped bode in
      Printf.printf "* ac analysis: v(%s)\n" out;
      Printf.printf "%-12s %-12s %-12s\n" "freq" "mag_db" "phase_deg";
      Array.iteri
        (fun i f -> Printf.printf "%-12.5g %-12.4f %-12.3f\n" f mags.(i) phases.(i))
        freqs
  | Netlist.Tran_analysis { dt; t_stop; out } -> begin
      match Yield_spice.Tran.run (Yield_spice.Tran.options ~t_stop ~dt ()) circuit with
      | Error e -> prerr_endline (Yield_spice.Tran.error_to_string e)
      | Ok result ->
          let v = Yield_spice.Tran.voltage_by_name result circuit out in
          Printf.printf "* tran analysis: v(%s)\n" out;
          Printf.printf "%-12s %-12s\n" "time" "volts";
          Array.iteri
            (fun i t -> Printf.printf "%-12.5g %-12.6g\n" t v.(i))
            result.Yield_spice.Tran.times
    end
  | Netlist.Dc_analysis { source; start; stop; step; out } -> begin
      let n =
        Stdlib.max 2 (1 + int_of_float (Float.round ((stop -. start) /. step)))
      in
      let values = Yield_numeric.Vec.linspace start stop n in
      match Yield_spice.Dcsweep.run circuit ~source ~values with
      | Error e -> prerr_endline (Dcop.error_to_string e)
      | Ok sweep ->
          let v = Yield_spice.Dcsweep.voltage_by_name sweep circuit out in
          Printf.printf "* dc sweep of %s: v(%s)\n" source out;
          Printf.printf "%-12s %-12s\n" source out;
          Array.iteri
            (fun i x -> Printf.printf "%-12.6g %-12.6g\n" x v.(i))
            values
    end

let netlist_run ~print path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e ->
      prerr_endline e;
      1
  | text when print -> begin
      (* canonical pretty-print only — the CI round-trip job diffs two
         passes of this to hold the printer to byte-idempotence *)
      match Netlist.print_canonical text with
      | exception Netlist.Parse_error { span; message } ->
          Printf.eprintf "%s:%d:%d: %s\n" path span.Netlist_ast.start_line
            span.Netlist_ast.start_col message;
          1
      | canonical ->
          print_string canonical;
          0
    end
  | text -> begin
      match Netlist.parse_with_analyses text with
      | exception Netlist.Parse_error { span; message } ->
          Printf.eprintf "%s:%d:%d: %s\n" path span.Netlist_ast.start_line
            span.Netlist_ast.start_col message;
          1
      | circuit, analyses -> begin
          match Dcop.solve circuit with
          | Error e ->
              prerr_endline (Dcop.error_to_string e);
              1
          | Ok op ->
              (* the operating point is always reported; analysis cards run
                 in order afterwards *)
              if analyses = [] then Format.printf "%a@." (Dcop.pp circuit) op
              else List.iter (run_analysis circuit op) analyses;
              0
        end
    end

let netlist_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"netlist file")
  in
  let print =
    Arg.(
      value & flag
      & info [ "print" ]
          ~doc:
            "print the canonical form of the netlist instead of solving it \
             (parse to the AST, pretty-print, exit; the output is a \
             byte-fixpoint of this very command)")
  in
  obs_cmd
    (Cmd.info "netlist" ~doc:"parse a netlist and print its DC operating point")
    Term.(const (fun p print () -> netlist_run ~print p) $ path $ print)

(* ---------- lint ---------- *)

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "print findings as one JSON object on stdout instead of text \
           (stable shape: findings array + severity counts + worst)")

let sarif_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "sarif" ] ~docv:"FILE"
        ~doc:
          "also write the findings (including baseline-suppressed ones, \
           marked with SARIF suppressions) as a SARIF 2.1.0 log to FILE")

let baseline_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "suppress findings whose fingerprints appear in the baseline \
           FILE; the exit code counts only fresh findings")

let write_baseline_term =
  Arg.(
    value & flag
    & info [ "write-baseline" ]
        ~doc:
          "write the current findings' fingerprints to the $(b,--baseline) \
           FILE (accepting them as known) and exit 0")

(* common tail of every lint subcommand: apply the baseline, render text or
   JSON, optionally emit SARIF, then exit by worst *fresh* severity
   (2 = errors, 1 = warnings only, 0 = clean or info-only) *)
let report_diags ?sarif ?baseline ?(write_baseline = false) ~json diags =
  let baselined =
    match (baseline, write_baseline) with
    | None, true ->
        Error "--write-baseline needs --baseline FILE to know where to write"
    | None, false -> Ok (diags, [], false)
    | Some path, true ->
        let b = Baseline.of_diags diags in
        Baseline.save ~path b;
        Printf.eprintf "wrote baseline %s (%d fingerprint(s))\n" path
          (List.length (Baseline.fingerprints b));
        Ok (diags, [], true)
    | Some path, false -> begin
        match Baseline.load ~path with
        | Error msg -> Error ("cannot load baseline: " ^ msg)
        | Ok b ->
            let fresh, suppressed = Baseline.partition b diags in
            Ok (fresh, suppressed, false)
      end
  in
  match baselined with
  | Error msg ->
      prerr_endline msg;
      2
  | Ok (fresh, suppressed, accepted) ->
      Option.iter (fun path -> Sarif.save ~path ~suppressed fresh) sarif;
      if json then begin
        let body =
          match Diagnostic.list_to_json fresh with
          | Yield_obs.Json.Obj fields when suppressed <> [] ->
              Yield_obs.Json.Obj
                (fields
                @ [ ("suppressed", Yield_obs.Json.Int (List.length suppressed)) ])
          | other -> other
        in
        print_endline (Yield_obs.Json.to_string body)
      end
      else begin
        print_endline (Diagnostic.list_to_text fresh);
        if suppressed <> [] then
          Printf.printf "%d finding(s) suppressed by baseline\n"
            (List.length suppressed)
      end;
      if accepted then 0 else Diagnostic.exit_code fresh

let pairs_of_topology = function
  | `None -> []
  | `Ota -> Ota.symmetric_pairs
  | `Miller -> Yield_circuits.Miller.symmetric_pairs

let lint_netlist json sarif baseline write_baseline topology files =
  let pairs = pairs_of_topology topology in
  report_diags ?sarif ?baseline ~write_baseline ~json
    (List.concat_map
       (fun f ->
         (* N codes (connectivity, device values, topology invariants) plus
            A/R codes (analysis-card preconditions) in one pass *)
         Netlist_lint.check_file ~tech:Tech.c35 ~pairs f
         @ Ac_tran_lint.check_file f)
       files)

let lint_netlist_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"netlist file(s) to lint")
  in
  let topology =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("ota", `Ota); ("miller", `Miller) ]) `None
      & info [ "topology" ] ~docv:"NAME"
          ~doc:
            "also assert the named topology's symmetric-pair W/L invariants \
             (ota or miller)")
  in
  obs_cmd
    (Cmd.info "netlist"
       ~doc:
         "lint netlists: connectivity (floating nodes, no-DC-path, \
          voltage-source loops), device values, topology invariants, and \
          .ac/.tran analysis-card preconditions (reachability, interval \
          time-constant bounds)")
    Term.(
      const (fun j s b w t fs () -> lint_netlist j s b w t fs)
      $ json_flag $ sarif_term $ baseline_term $ write_baseline_term
      $ topology $ files)

let lint_tbl json sarif baseline write_baseline axes control files =
  report_diags ?sarif ?baseline ~write_baseline ~json
    (List.concat_map (fun f -> Table_lint.check_file ?axes ?control f) files)

let lint_tbl_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:".tbl file(s) to lint")
  in
  let axes =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "axes" ] ~docv:"COL,..."
          ~doc:
            "columns serving as interpolation abscissae (default: the first \
             column); each must be strictly increasing")
  in
  let control =
    Arg.(
      value
      & opt (some string) None
      & info [ "control" ] ~docv:"STR"
          ~doc:
            "table-model control string to check against the axes (e.g. the \
             paper's '3E')")
  in
  obs_cmd
    (Cmd.info "tbl"
       ~doc:
         "lint .tbl table models: monotone axes, NaN/Inf cells, control \
          string consistency")
    Term.(
      const (fun j s b w a c fs () -> lint_tbl j s b w a c fs)
      $ json_flag $ sarif_term $ baseline_term $ write_baseline_term
      $ axes $ control $ files)

let lint_config json sarif baseline write_baseline fast checkpoint_dir resume
    fault_spec_check =
  let config =
    {
      (if fast then Config.fast_scale else Config.paper_scale) with
      Config.solver = Config.solver_of_env ();
    }
  in
  let view =
    {
      Config_lint.population = config.Config.ga.Ga.population_size;
      generations = config.Config.ga.Ga.generations;
      mc_samples = config.Config.mc_samples;
      front_stride = config.Config.front_stride;
      control = config.Config.control;
      seed = config.Config.seed;
      jobs = Yield_exec.Jobs.resolve ();
      solver = config.Config.solver;
      (* no testbench is built here, so the csr size heuristic stays mute *)
      system_size = None;
      fingerprint = Config.fingerprint config;
    }
  in
  let diags = Config_lint.check ?checkpoint_dir ~resume view in
  let fault_diags =
    match fault_spec_check with
    | None -> []
    | Some spec -> Config_lint.check_fault_spec spec
  in
  report_diags ?sarif ?baseline ~write_baseline ~json (diags @ fault_diags)

let lint_config_cmd =
  let fast =
    Arg.(
      value & flag
      & info [ "fast" ] ~doc:"lint the reduced-scale config (as `flow --fast`)")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "dry-run the checkpoint compatibility check against DIR \
             (fingerprint match, resumability)")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"lint as if the flow would be resumed from $(b,--checkpoint)")
  in
  let fault_spec_check =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-fault-spec" ] ~docv:"SPEC"
          ~doc:
            "statically validate a fault-injection spec (names must be \
             registered points, schedules must be able to fire) without \
             arming it")
  in
  obs_cmd
    (Cmd.info "config"
       ~doc:
         "preflight the flow configuration: scale cross-checks, checkpoint \
          fingerprint dry-run, fault-spec validation")
    Term.(
      const (fun j sa b w f c r s () -> lint_config j sa b w f c r s)
      $ json_flag $ sarif_term $ baseline_term $ write_baseline_term
      $ fast $ checkpoint_dir $ resume $ fault_spec_check)

let window_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ a; b ] -> begin
        match (float_of_string_opt a, float_of_string_opt b) with
        | Some lo, Some hi -> Ok (lo, hi)
        | _ -> Error (`Msg "expected LO,HI (two numbers)")
      end
    | _ -> Error (`Msg "expected LO,HI (two numbers)")
  in
  let print ppf (lo, hi) = Format.fprintf ppf "%g,%g" lo hi in
  Arg.conv (parse, print)

let lint_va json sarif baseline write_baseline dir gain_window pm_window files =
  let specs =
    (match gain_window with Some w -> [ ("gain", w) ] | None -> [])
    @ (match pm_window with Some w -> [ ("pm", w) ] | None -> [])
  in
  let specs = match specs with [] -> None | l -> Some l in
  report_diags ?sarif ?baseline ~write_baseline ~json
    (List.concat_map (fun f -> Va_lint.check_file ?dir ?specs f) files)

let lint_va_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Verilog-A file(s) to lint")
  in
  let dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "directory holding the referenced .tbl files (default: each \
             file's own directory)")
  in
  let gain_window =
    Arg.(
      value
      & opt (some window_conv) None
      & info [ "spec-gain" ] ~docv:"LO,HI"
          ~doc:
            "gain window (dB) the model must serve; the interval evaluation \
             proves the inflated window stays inside the table domains")
  in
  let pm_window =
    Arg.(
      value
      & opt (some window_conv) None
      & info [ "spec-pm" ] ~docv:"LO,HI"
          ~doc:"phase-margin window (deg) the model must serve")
  in
  obs_cmd
    (Cmd.info "va"
       ~doc:
         "lint Verilog-A behavioural modules: ports and disciplines, \
          $table_model shape and control strings, referenced .tbl files, \
          use-before-assign, interval spec-window coverage")
    Term.(
      const (fun j s b w d g p fs () -> lint_va j s b w d g p fs)
      $ json_flag $ sarif_term $ baseline_term $ write_baseline_term
      $ dir $ gain_window $ pm_window $ files)

let lint_corners json sarif baseline write_baseline k_sigma min_gain min_pm
    files =
  let window =
    match (min_gain, min_pm) with
    | None, None -> None
    | g, p ->
        Some
          {
            Corner_lint.min_gain_db = Option.value g ~default:0.;
            min_pm_deg = Option.value p ~default:0.;
          }
  in
  report_diags ?sarif ?baseline ~write_baseline ~json
    (List.concat_map
       (fun f -> Corner_lint.check_file ~k_sigma ?window f)
       files)

let lint_corners_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"netlist file(s) to analyse")
  in
  let k_sigma =
    Arg.(
      value & opt float 3.
      & info [ "k-sigma" ] ~docv:"SIGMA"
          ~doc:
            "truncate every per-device statistical parameter box at K \
             sigmas (global + Pelgrom mismatch); all proofs hold over this \
             box")
  in
  let min_gain =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-gain" ] ~docv:"DB"
          ~doc:"spec window floor on DC gain (default 0)")
  in
  let min_pm =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-pm" ] ~docv:"DEG"
          ~doc:"spec window floor on phase margin (default 0)")
  in
  obs_cmd
    (Cmd.info "corners"
       ~doc:
         "corner-aware abstract interpretation of netlists: interval DC/AC \
          analysis over the whole statistical parameter box — per-device \
          saturation proofs (D codes) and provably-fail / provably-pass / \
          undecided spec verdicts with (gain, PM) enclosures as evidence \
          (Y codes), against the first .ac card's sweep and probe")
    Term.(
      const (fun j s b w k g p fs () -> lint_corners j s b w k g p fs)
      $ json_flag $ sarif_term $ baseline_term $ write_baseline_term
      $ k_sigma $ min_gain $ min_pm $ files)

let lint_codes json =
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            (List.map
               (fun (c, d) -> (c, Json.String d))
               Sarif.rule_descriptions)))
  else
    List.iter
      (fun (c, d) -> Printf.printf "%s\t%s\n" c d)
      Sarif.rule_descriptions;
  0

let lint_codes_cmd =
  obs_cmd
    (Cmd.info "codes"
       ~doc:
         "list every stable diagnostic code with its registry description \
          (the same registry SARIF rule metadata is generated from); CI \
          diffs this against the README code table")
    Term.(const (fun j () -> lint_codes j) $ json_flag)

let lint_cmd =
  Cmd.group
    (Cmd.info "lint"
       ~doc:
         "preflight static analysis: diagnostics with stable codes \
          (N/T/C/F/A/R/V/D/Y), text, JSON or SARIF output, baseline \
          suppression, worst-severity exit code")
    [
      lint_netlist_cmd; lint_tbl_cmd; lint_config_cmd; lint_va_cmd;
      lint_corners_cmd; lint_codes_cmd;
    ]

(* ---------- serve / loadgen ---------- *)

module Addr = Yield_serve.Addr
module Server = Yield_serve.Server
module Loadgen = Yield_serve.Loadgen
module Client = Yield_serve.Client

let addr_conv ~what =
  let parse s =
    match Addr.parse s with Ok a -> Ok a | Error msg -> Error (`Msg msg)
  in
  let print ppf a = Format.pp_print_string ppf (Addr.to_string a) in
  ignore what;
  Arg.conv (parse, print)

let default_addr = Addr.Unix_sock "yieldlab.sock"

let serve listen tables_dir deadline_ms queue_cap max_conns drain_grace quiet =
  let log = if quiet then ignore else prerr_endline in
  let cfg =
    {
      (Server.default ~addr:listen ~tables_dir) with
      Server.jobs = Yield_exec.Jobs.resolve ();
      deadline_s = deadline_ms /. 1e3;
      queue_capacity = queue_cap;
      max_conns;
      drain_grace_s = drain_grace;
      log;
    }
  in
  Server.run cfg

let serve_cmd =
  let listen =
    Arg.(
      value
      & opt (addr_conv ~what:"listen") default_addr
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "address to serve on: $(b,unix:PATH) or $(b,tcp:HOST:PORT) \
             (default $(b,unix:yieldlab.sock))")
  in
  let deadline_ms =
    Arg.(
      value & opt float 250.
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "per-request deadline in milliseconds; a query that cannot be \
             answered in time gets a typed $(b,timeout) frame.  0 disables")
  in
  let queue_cap =
    Arg.(
      value & opt int 1024
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "admission queue bound; beyond it requests are shed immediately \
             with an $(b,overloaded) frame")
  in
  let max_conns =
    Arg.(
      value & opt int 1024
      & info [ "max-conns" ] ~docv:"N" ~doc:"concurrent connection limit")
  in
  let drain_grace =
    Arg.(
      value & opt float 5.
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"maximum time to finish in-flight work when draining")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"suppress the server log lines")
  in
  obs_cmd
    (Cmd.info "serve"
       ~doc:
         "serve the saved model tables over a socket: line-delimited JSON \
          queries (ping/lookup/design plus health/ready/reload/shutdown), \
          per-request deadlines, bounded-queue load shedding, lint-gated \
          hot reload on SIGHUP, graceful drain on SIGTERM")
    Term.(
      const (fun l t d q m g quiet () -> serve l t d q m g quiet)
      $ listen $ tables_dir_term $ deadline_ms $ queue_cap $ max_conns
      $ drain_grace $ quiet)

let probe addr op =
  match Client.connect addr with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "yieldlab: cannot reach %s: %s\n" (Addr.to_string addr)
        (Unix.error_message e);
      1
  | c ->
      let outcome =
        try
          let frame = Client.request c (Json.Obj [ ("op", Json.String op) ]) in
          print_endline (Json.to_string frame);
          (match Json.member "ok" frame with
          | Some (Json.Bool true) -> 0
          | Some _ | None -> 1)
        with Failure msg | Unix.Unix_error (_, msg, _) ->
          Printf.eprintf "yieldlab: probe failed: %s\n" msg;
          1
      in
      Client.close c;
      outcome

let loadgen addr clients duration seed probe_op out =
  match probe_op with
  | Some op -> probe addr op
  | None -> begin
      match Loadgen.run ~seed ~addr ~clients ~duration_s:duration () with
      | Error msg ->
          Printf.eprintf "yieldlab: %s\n" msg;
          1
      | Ok r ->
          print_endline (Loadgen.to_text r);
          (match out with
          | None -> ()
          | Some path ->
              Atomic_io.write_file ~path (Json.to_string (Loadgen.to_json r));
              Printf.printf "wrote %s\n" path);
          if r.Loadgen.sent > 0 && r.Loadgen.ok = 0 then 1 else 0
    end

let loadgen_cmd =
  let addr =
    Arg.(
      value
      & opt (addr_conv ~what:"addr") default_addr
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:"server address: $(b,unix:PATH) or $(b,tcp:HOST:PORT)")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"concurrent client connections")
  in
  let duration =
    Arg.(
      value & opt float 5.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"how long to drive load")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"deterministic op-mix seed")
  in
  let probe_op =
    Arg.(
      value
      & opt (some string) None
      & info [ "probe" ] ~docv:"OP"
          ~doc:
            "one-shot mode: send a single $(i,OP) request (e.g. $(b,health), \
             $(b,ready)), print the response frame, exit 0 iff it is \
             $(b,ok:true)")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"write the bench document (yieldlab-bench-serve/v1) to FILE")
  in
  obs_cmd
    (Cmd.info "loadgen"
       ~doc:
         "drive closed-loop load at a running server and report throughput \
          and latency percentiles (p50/p95/p99); $(b,--probe) sends one \
          admin request for smoke checks")
    Term.(
      const (fun a c d s p o () -> loadgen a c d s p o)
      $ addr $ clients $ duration $ seed $ probe_op $ out)

(* ---------- main ---------- *)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "yieldlab" ~version:"1.0.0"
      ~doc:"combined performance and yield behavioural models for analogue ICs"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            ota_eval_cmd;
            miller_eval_cmd;
            corners_cmd;
            mc_cmd;
            optimize_cmd;
            flow_cmd;
            design_cmd;
            filter_cmd;
            step_cmd;
            noise_cmd;
            sensitivity_cmd;
            export_va_cmd;
            netlist_cmd;
            lint_cmd;
            serve_cmd;
            loadgen_cmd;
          ]))
