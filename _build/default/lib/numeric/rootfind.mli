(** Scalar root finding, used to pin down unity-gain and -3 dB crossover
    frequencies from sampled transfer functions. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f a b] finds a root of [f] in [a, b].
    @raise Invalid_argument if [f a] and [f b] have the same sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method: inverse quadratic interpolation / secant with a bisection
    safety net.  Same bracketing contract as {!bisect}. *)

val secant_in_bracket :
  ?tol:float -> (float -> float) -> float -> float -> float
(** A few secant steps clamped to the bracket; cheap refinement when the
    function is known to be smooth and nearly linear in the bracket. *)
