(** Dense row-major float matrices. *)

type t

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t

val of_arrays : float array array -> t
(** @raise Invalid_argument on ragged input or zero rows. *)

val copy : t -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] performs [m.(i,j) <- m.(i,j) + x]; the fundamental
    operation for MNA stamping. *)

val fill : t -> float -> unit

val mul : t -> t -> t
(** Matrix product.  @raise Invalid_argument on inner-dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val max_abs : t -> float

val equal_eps : float -> t -> t -> bool
(** [equal_eps eps a b] is true when the two matrices have the same shape and
    agree entrywise within [eps]. *)

val pp : Format.formatter -> t -> unit
