(** LU factorisation with partial pivoting, for the real MNA systems solved by
    the DC operating-point analysis. *)

exception Singular of int
(** Raised when no usable pivot exists in the given column. *)

type t
(** A factorisation of a square matrix. *)

val factor : Mat.t -> t
(** [factor m] computes [P m = L U].  [m] is not modified.
    @raise Invalid_argument if [m] is not square.
    @raise Singular if a pivot column is numerically zero. *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] returns [x] with [m x = b]. *)

val solve_in_place : t -> Vec.t -> unit
(** Like {!solve} but overwrites [b] with the solution. *)

val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot [factor] + [solve]. *)

val det : t -> float
(** Determinant of the factored matrix (sign includes the permutation). *)

val condition_heuristic : t -> float
(** Cheap conditioning indicator: ratio of the largest to smallest absolute
    diagonal entry of [U].  Infinite when the smallest is zero. *)
