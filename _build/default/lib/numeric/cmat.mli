(** Complex dense matrices and LU solves, for small-signal AC analysis where
    the MNA system is [G + jwC]. *)

type t

val create : int -> int -> t
(** Zero matrix. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> Complex.t

val set : t -> int -> int -> Complex.t -> unit

val add_to : t -> int -> int -> Complex.t -> unit

val of_real : ?imag_scale:float -> Mat.t -> Mat.t -> t
(** [of_real g c ~imag_scale:w] builds [g + j*w*c].  Shapes must agree. *)

val mul_vec : t -> Complex.t array -> Complex.t array

val solve : t -> Complex.t array -> Complex.t array
(** In-place-free LU solve with partial pivoting (by magnitude).
    @raise Invalid_argument on shape mismatch.
    @raise Lu.Singular when a pivot vanishes. *)
