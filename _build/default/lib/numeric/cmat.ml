(* Complex matrices are stored as two flat float arrays (re, im): cheaper than
   an array of boxed Complex.t records, and the AC sweep allocates one of
   these per frequency point. *)

type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Cmat.create: negative dimension";
  let n = rows * cols in
  { rows; cols; re = Array.make n 0.; im = Array.make n 0. }

let rows m = m.rows

let cols m = m.cols

let idx m i j = (i * m.cols) + j

let get m i j =
  let k = idx m i j in
  { Complex.re = m.re.(k); im = m.im.(k) }

let set m i j (z : Complex.t) =
  let k = idx m i j in
  m.re.(k) <- z.re;
  m.im.(k) <- z.im

let add_to m i j (z : Complex.t) =
  let k = idx m i j in
  m.re.(k) <- m.re.(k) +. z.re;
  m.im.(k) <- m.im.(k) +. z.im

let of_real ?(imag_scale = 1.) g c =
  if Mat.rows g <> Mat.rows c || Mat.cols g <> Mat.cols c then
    invalid_arg "Cmat.of_real: shape mismatch";
  let m = create (Mat.rows g) (Mat.cols g) in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      let k = idx m i j in
      m.re.(k) <- Mat.get g i j;
      m.im.(k) <- imag_scale *. Mat.get c i j
    done
  done;
  m

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Cmat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let re = ref 0. and im = ref 0. in
      for j = 0 to m.cols - 1 do
        let k = idx m i j in
        let vr = v.(j).Complex.re and vi = v.(j).Complex.im in
        re := !re +. (m.re.(k) *. vr) -. (m.im.(k) *. vi);
        im := !im +. (m.re.(k) *. vi) +. (m.im.(k) *. vr)
      done;
      { Complex.re = !re; im = !im })

let mag2 m k = (m.re.(k) *. m.re.(k)) +. (m.im.(k) *. m.im.(k))

let solve m0 b =
  let n = m0.rows in
  if m0.cols <> n then invalid_arg "Cmat.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Cmat.solve: dimension mismatch";
  let m = { m0 with re = Array.copy m0.re; im = Array.copy m0.im } in
  let xr = Array.init n (fun i -> b.(i).Complex.re) in
  let xi = Array.init n (fun i -> b.(i).Complex.im) in
  let swap_rows a c =
    if a <> c then begin
      for j = 0 to n - 1 do
        let ka = idx m a j and kc = idx m c j in
        let tr = m.re.(ka) and ti = m.im.(ka) in
        m.re.(ka) <- m.re.(kc);
        m.im.(ka) <- m.im.(kc);
        m.re.(kc) <- tr;
        m.im.(kc) <- ti
      done;
      let tr = xr.(a) and ti = xi.(a) in
      xr.(a) <- xr.(c);
      xi.(a) <- xi.(c);
      xr.(c) <- tr;
      xi.(c) <- ti
    end
  in
  (* Gaussian elimination with partial pivoting, eliminating into the RHS as
     we go (single-RHS forward pass). *)
  for k = 0 to n - 1 do
    let best = ref k and best_mag = ref (mag2 m (idx m k k)) in
    for i = k + 1 to n - 1 do
      let mag = mag2 m (idx m i k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag < 1e-280 then raise (Lu.Singular k);
    swap_rows k !best;
    let kp = idx m k k in
    let pr = m.re.(kp) and pi = m.im.(kp) in
    let pmag = (pr *. pr) +. (pi *. pi) in
    for i = k + 1 to n - 1 do
      let ki = idx m i k in
      let ar = m.re.(ki) and ai = m.im.(ki) in
      if ar <> 0. || ai <> 0. then begin
        (* factor = a / pivot *)
        let fr = ((ar *. pr) +. (ai *. pi)) /. pmag in
        let fi = ((ai *. pr) -. (ar *. pi)) /. pmag in
        m.re.(ki) <- 0.;
        m.im.(ki) <- 0.;
        for j = k + 1 to n - 1 do
          let kj = idx m k j and ij = idx m i j in
          let ur = m.re.(kj) and ui = m.im.(kj) in
          m.re.(ij) <- m.re.(ij) -. ((fr *. ur) -. (fi *. ui));
          m.im.(ij) <- m.im.(ij) -. ((fr *. ui) +. (fi *. ur))
        done;
        xr.(i) <- xr.(i) -. ((fr *. xr.(k)) -. (fi *. xi.(k)));
        xi.(i) <- xi.(i) -. ((fr *. xi.(k)) +. (fi *. xr.(k)))
      end
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let sr = ref xr.(i) and si = ref xi.(i) in
    for j = i + 1 to n - 1 do
      let kj = idx m i j in
      sr := !sr -. ((m.re.(kj) *. xr.(j)) -. (m.im.(kj) *. xi.(j)));
      si := !si -. ((m.re.(kj) *. xi.(j)) +. (m.im.(kj) *. xr.(j)))
    done;
    let kp = idx m i i in
    let pr = m.re.(kp) and pi = m.im.(kp) in
    let pmag = (pr *. pr) +. (pi *. pi) in
    xr.(i) <- ((!sr *. pr) +. (!si *. pi)) /. pmag;
    xi.(i) <- ((!si *. pr) -. (!sr *. pi)) /. pmag
  done;
  Array.init n (fun i -> { Complex.re = xr.(i); im = xi.(i) })
