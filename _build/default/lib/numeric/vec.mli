(** Dense float vectors.

    A thin layer over [float array] providing the handful of operations the
    rest of the library needs.  Vectors are mutable; functions whose name ends
    in [_into] write their result into an existing vector, everything else
    allocates. *)

type t = float array

val create : int -> t
(** [create n] is a fresh zero vector of length [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] copies [src] into [dst]; dimensions must agree. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : alpha:float -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] performs [y <- alpha * x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute entry; [0.] for the empty vector. *)

val max_abs_diff : t -> t -> float
(** [max_abs_diff a b] is [norm_inf (sub a b)] without the allocation. *)

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive.  @raise Invalid_argument if [n < 2]. *)

val logspace : float -> float -> int -> t
(** [logspace a b n] is [n] points spaced evenly on a log scale from [a] to
    [b]; both must be strictly positive.  @raise Invalid_argument otherwise. *)

val pp : Format.formatter -> t -> unit
