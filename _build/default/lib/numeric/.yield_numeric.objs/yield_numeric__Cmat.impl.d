lib/numeric/cmat.ml: Array Complex Lu Mat
