lib/numeric/rootfind.mli:
