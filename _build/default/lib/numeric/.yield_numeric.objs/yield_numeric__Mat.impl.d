lib/numeric/mat.ml: Array Float Format
