lib/numeric/lu.ml: Array Float Mat
