lib/numeric/mat.mli: Format Vec
