lib/numeric/vec.ml: Array Float Format
