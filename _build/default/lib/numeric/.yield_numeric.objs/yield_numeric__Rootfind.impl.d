lib/numeric/rootfind.ml: Float
