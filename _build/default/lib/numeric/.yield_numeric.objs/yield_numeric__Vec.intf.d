lib/numeric/vec.mli: Format
