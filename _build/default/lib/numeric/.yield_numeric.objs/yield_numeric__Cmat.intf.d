lib/numeric/cmat.mli: Complex Mat
