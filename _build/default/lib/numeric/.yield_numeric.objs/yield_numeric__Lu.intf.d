lib/numeric/lu.mli: Mat Vec
