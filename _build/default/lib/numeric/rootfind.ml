let check_bracket name fa fb =
  if (fa > 0. && fb > 0.) || (fa < 0. && fb < 0.) then
    invalid_arg (name ^ ": root not bracketed")

let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else begin
    check_bracket "Rootfind.bisect" fa fb;
    let rec loop a fa b i =
      let m = 0.5 *. (a +. b) in
      if i >= max_iter || 0.5 *. Float.abs (b -. a) <= tol *. (1. +. Float.abs m)
      then m
      else
        let fm = f m in
        if fm = 0. then m
        else if (fa < 0.) = (fm < 0.) then loop m fm b (i + 1)
        else loop a fa m (i + 1)
    in
    loop a fa b 0
  end

(* Brent (1973): keep a bracketing pair (a, b) with |f(b)| <= |f(a)|; try
   inverse quadratic interpolation, fall back to secant, fall back to
   bisection whenever the step misbehaves. *)
let brent ?(tol = 1e-12) ?(max_iter = 120) f a b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else begin
    check_bracket "Rootfind.brent" fa fb;
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let iter = ref 0 in
    while
      !fb <> 0.
      && Float.abs (!b -. !a) > tol *. (1. +. Float.abs !b)
      && !iter < max_iter
    do
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* inverse quadratic interpolation *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo = ((3. *. !a) +. !b) /. 4. and hi = !b in
      let lo, hi = if lo < hi then (lo, hi) else (hi, lo) in
      let use_bisection =
        s < lo || s > hi
        || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
        || ((not !mflag) && Float.abs (s -. !b) >= Float.abs !d /. 2.)
      in
      let s = if use_bisection then 0.5 *. (!a +. !b) else s in
      mflag := use_bisection;
      let fs = f s in
      d := !c -. !b;
      c := !b;
      fc := !fb;
      if (!fa < 0.) = (fs < 0.) then begin
        a := s;
        fa := fs
      end
      else begin
        b := s;
        fb := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in
        a := !b;
        b := t;
        let t = !fa in
        fa := !fb;
        fb := t
      end
    done;
    !b
  end

let secant_in_bracket ?(tol = 1e-12) f a b =
  let clamp lo hi x = Float.max lo (Float.min hi x) in
  let lo = Float.min a b and hi = Float.max a b in
  let rec loop x0 f0 x1 f1 n =
    if n = 0 || Float.abs (x1 -. x0) <= tol *. (1. +. Float.abs x1) || f1 = f0
    then x1
    else
      let x2 = clamp lo hi (x1 -. (f1 *. (x1 -. x0) /. (f1 -. f0))) in
      loop x1 f1 x2 (f x2) (n - 1)
  in
  loop a (f a) b (f b) 8
