exception Singular of int

(* Doolittle LU with partial pivoting, stored packed in one matrix: the unit
   lower triangle in the strict lower part, U in the upper part.  [perm] maps
   factored row index -> original row index of b. *)
type t = { lu : Mat.t; perm : int array; swaps : int }

let pivot_floor = 1e-300

let factor m =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Lu.factor: matrix not square";
  let lu = Mat.copy m in
  let perm = Array.init n (fun i -> i) in
  let swaps = ref 0 in
  for k = 0 to n - 1 do
    (* choose the pivot row *)
    let best = ref k and best_mag = ref (Float.abs (Mat.get lu k k)) in
    for i = k + 1 to n - 1 do
      let mag = Float.abs (Mat.get lu i k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag < pivot_floor then raise (Singular k);
    if !best <> k then begin
      incr swaps;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tmp;
      for j = 0 to n - 1 do
        let a = Mat.get lu k j and b = Mat.get lu !best j in
        Mat.set lu k j b;
        Mat.set lu !best j a
      done
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; swaps = !swaps }

let solve_in_place f b =
  let n = Mat.rows f.lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  (* apply the permutation *)
  let x = Array.init n (fun i -> b.(f.perm.(i))) in
  (* forward substitution: L y = P b *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution: U x = y *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get f.lu i i
  done;
  Array.blit x 0 b 0 n

let solve f b =
  let x = Array.copy b in
  solve_in_place f x;
  x

let solve_system m b = solve (factor m) b

let det f =
  let n = Mat.rows f.lu in
  let d = ref (if f.swaps land 1 = 1 then -1. else 1.) in
  for i = 0 to n - 1 do
    d := !d *. Mat.get f.lu i i
  done;
  !d

let condition_heuristic f =
  let n = Mat.rows f.lu in
  let mx = ref 0. and mn = ref infinity in
  for i = 0 to n - 1 do
    let d = Float.abs (Mat.get f.lu i i) in
    mx := Float.max !mx d;
    mn := Float.min !mn d
  done;
  if !mn = 0. then infinity else !mx /. !mn
