type t = float array

let create n = Array.make n 0.

let init = Array.init

let copy = Array.copy

let dim = Array.length

let fill v x = Array.fill v 0 (Array.length v) x

let blit ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Vec.blit: dimension mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let add a b = Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b = Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale s a = Array.map (fun x -> s *. x) a

let axpy ~alpha ~x ~y =
  if Array.length x <> Array.length y then
    invalid_arg "Vec.axpy: dimension mismatch";
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let dot a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec.dot: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. a

let max_abs_diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec.max_abs_diff: dimension mismatch";
  let m = ref 0. in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let map = Array.map

let mapi = Array.mapi

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need at least two points";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let logspace a b n =
  if a <= 0. || b <= 0. then invalid_arg "Vec.logspace: bounds must be > 0";
  Array.map exp (linspace (log a) (log b) n)

let pp ppf v =
  Format.fprintf ppf "@[<hov 1>[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "|]@]"
