(* Row-major storage in a single flat array keeps LU factorisation cache
   friendly, which matters because the Newton loop refactorises every
   iteration. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0. }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.
  done;
  m

let init rows cols f =
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Mat.of_arrays: ragged")
    a;
  init rows cols (fun i j -> a.(i).(j))

let copy m = { m with data = Array.copy m.data }

let rows m = m.rows

let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let add_to m i j x =
  let k = (i * m.cols) + j in
  m.data.(k) <- m.data.(k) +. x

let fill m x = Array.fill m.data 0 (Array.length m.data) x

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat: shape mismatch";
  {
    a with
    data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k));
  }

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let max_abs m =
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. m.data

let equal_eps eps a b =
  a.rows = b.rows && a.cols = b.cols && max_abs (sub a b) <= eps

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done
  done;
  Format.fprintf ppf "@]"
