module Mosfet = Yield_spice.Mosfet

type t = Tt | Ff | Ss | Fs | Sf

let all = [ Tt; Ff; Ss; Fs; Sf ]

let to_string = function
  | Tt -> "tt"
  | Ff -> "ff"
  | Ss -> "ss"
  | Fs -> "fs"
  | Sf -> "sf"

let of_string s =
  match String.lowercase_ascii s with
  | "tt" -> Some Tt
  | "ff" -> Some Ff
  | "ss" -> Some Ss
  | "fs" -> Some Fs
  | "sf" -> Some Sf
  | _ -> None

(* direction of each polarity: +1 = fast (lower vth, higher kp) *)
let directions = function
  | Tt -> (0., 0.)
  | Ff -> (1., 1.)
  | Ss -> (-1., -1.)
  | Fs -> (1., -1.)
  | Sf -> (-1., 1.)

let shift_model ~n_sigma ~direction ~sigma_vth ~sigma_kp (m : Mosfet.model) =
  Mosfet.with_deltas m
    ~dvth:(-.direction *. n_sigma *. sigma_vth)
    ~dkp_rel:(direction *. n_sigma *. sigma_kp)
    ~dlambda_rel:0.

let apply ?(n_sigma = 3.) (spec : Variation.spec) corner (tech : Tech.t) =
  let dir_n, dir_p = directions corner in
  let g = spec.Variation.global in
  let nmos =
    shift_model ~n_sigma ~direction:dir_n ~sigma_vth:g.Variation.sigma_vth_n
      ~sigma_kp:g.Variation.sigma_kp_rel_n tech.Tech.nmos
  in
  let pmos =
    shift_model ~n_sigma ~direction:dir_p ~sigma_vth:g.Variation.sigma_vth_p
      ~sigma_kp:g.Variation.sigma_kp_rel_p tech.Tech.pmos
  in
  Tech.with_models tech ~nmos ~pmos
