lib/process/sensitivity.ml: Array List Variation
