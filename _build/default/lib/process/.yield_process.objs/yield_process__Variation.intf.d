lib/process/variation.mli: Yield_spice Yield_stats
