lib/process/variation.ml: Array Yield_spice Yield_stats
