lib/process/montecarlo.mli: Yield_stats
