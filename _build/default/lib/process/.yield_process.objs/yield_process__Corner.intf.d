lib/process/corner.mli: Tech Variation
