lib/process/tech.mli: Yield_spice
