lib/process/corner.ml: String Tech Variation Yield_spice
