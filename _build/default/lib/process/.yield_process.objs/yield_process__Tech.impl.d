lib/process/tech.ml: Yield_spice
