lib/process/sensitivity.mli: Stdlib Variation
