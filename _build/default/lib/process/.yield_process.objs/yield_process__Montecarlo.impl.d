lib/process/montecarlo.ml: Array Atomic Domain Float Fun List Stdlib Yield_stats
