(** First-order sensitivity of a performance function to the global process
    components, by central finite differences at +-1 sigma, and the variance
    decomposition it implies.  A cheap complement to Monte Carlo: it tells
    the designer {e which} process parameter drives a spread. *)

type component = Vth_n | Vth_p | Kp_n | Kp_p | Lambda

val all : component list

val to_string : component -> string

val draw_for : Variation.spec -> component -> float -> Variation.global_draw
(** A global draw with one component set to [k] sigmas, the rest nominal. *)

type result = {
  component : component;
  per_sigma : float;  (** response change for a +1 sigma shift *)
  variance_share : float;  (** fraction of the (first-order) total variance *)
}

val analyse :
  spec:Variation.spec ->
  eval:(Variation.global_draw -> float option) ->
  (result list, string) Stdlib.result
(** [eval] evaluates the performance under a given global draw (mismatch
    excluded); 11 evaluations total.  [Error] if any evaluation fails. *)
