module Mosfet = Yield_spice.Mosfet

type t = {
  name : string;
  vdd : float;
  nmos : Mosfet.model;
  pmos : Mosfet.model;
  l_min : float;
}

let c35 =
  {
    name = "c35-class 0.35um";
    vdd = 3.3;
    l_min = 0.35e-6;
    nmos =
      {
        Mosfet.polarity = Mosfet.Nmos;
        vth0 = 0.50;
        kp = 170e-6;
        gamma = 0.58;
        phi = 0.7;
        lambda0 = 0.04;
        n_slope = 1.3;
        cox = 4.54e-3;
        cgso = 1.2e-10;
        cgdo = 1.2e-10;
        cj = 9.4e-4;
        cjsw = 2.5e-10;
        ext = 8.5e-7;
      };
    pmos =
      {
        Mosfet.polarity = Mosfet.Pmos;
        vth0 = 0.65;
        kp = 58e-6;
        gamma = 0.40;
        phi = 0.7;
        lambda0 = 0.06;
        n_slope = 1.35;
        cox = 4.54e-3;
        cgso = 1.2e-10;
        cgdo = 1.2e-10;
        cj = 1.36e-3;
        cjsw = 3.2e-10;
        ext = 8.5e-7;
      };
  }

let with_models t ~nmos ~pmos = { t with nmos; pmos }
