(** Process corners derived from the statistical spec: the deterministic
    complement to Monte Carlo analysis. *)

type t = Tt | Ff | Ss | Fs | Sf
    (** Typical, fast-fast, slow-slow, fast-N/slow-P, slow-N/fast-P. *)

val all : t list

val to_string : t -> string

val of_string : string -> t option

val apply : ?n_sigma:float -> Variation.spec -> t -> Tech.t -> Tech.t
(** [apply spec corner tech] shifts the nominal models by [n_sigma] (default
    3) global sigmas in the corner's direction.  "Fast" means lower threshold
    magnitude and higher kp. *)
