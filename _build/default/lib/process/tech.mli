(** Technology description: nominal device models and supply conditions.

    [c35] is a 0.35 um-class mixed-signal CMOS technology in the spirit of the
    AMS C35B4 process used by the paper: 3.3 V supply, NMOS kp around
    170 uA/V^2, PMOS around 58 uA/V^2, |vth| around 0.5-0.65 V.  The numbers
    are textbook values for that node, not the (proprietary) foundry deck —
    see DESIGN.md §2. *)

type t = {
  name : string;
  vdd : float;  (** nominal supply, V *)
  nmos : Yield_spice.Mosfet.model;
  pmos : Yield_spice.Mosfet.model;
  l_min : float;  (** minimum channel length, m *)
}

val c35 : t

val with_models :
  t -> nmos:Yield_spice.Mosfet.model -> pmos:Yield_spice.Mosfet.model -> t
