type component = Vth_n | Vth_p | Kp_n | Kp_p | Lambda

let all = [ Vth_n; Vth_p; Kp_n; Kp_p; Lambda ]

let to_string = function
  | Vth_n -> "vth_n"
  | Vth_p -> "vth_p"
  | Kp_n -> "kp_n"
  | Kp_p -> "kp_p"
  | Lambda -> "lambda"

let draw_for (spec : Variation.spec) component k =
  let z = Array.make Variation.global_dims 0. in
  let index =
    match component with
    | Vth_n -> 0
    | Vth_p -> 1
    | Kp_n -> 2
    | Kp_p -> 3
    | Lambda -> 4
  in
  z.(index) <- k;
  Variation.global_draw_of_normals spec z

type result = {
  component : component;
  per_sigma : float;
  variance_share : float;
}

let analyse ~spec ~eval =
  match eval Variation.nominal_global with
  | None -> Error "sensitivity: nominal evaluation failed"
  | Some _nominal -> begin
      let slopes =
        List.map
          (fun component ->
            match
              (eval (draw_for spec component 1.), eval (draw_for spec component (-1.)))
            with
            | Some up, Some down -> Ok (component, (up -. down) /. 2.)
            | _ ->
                Error
                  ("sensitivity: evaluation failed for " ^ to_string component))
          all
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | Ok x :: rest -> collect (x :: acc) rest
        | Error e :: _ -> Error e
      in
      match collect [] slopes with
      | Error e -> Error e
      | Ok slopes ->
          let total =
            List.fold_left (fun acc (_, s) -> acc +. (s *. s)) 0. slopes
          in
          Ok
            (List.map
               (fun (component, s) ->
                 {
                   component;
                   per_sigma = s;
                   variance_share = (if total > 0. then s *. s /. total else 0.);
                 })
               slopes)
    end
