(** Generic Monte Carlo driver and yield estimation. *)

val run :
  samples:int -> rng:Yield_stats.Rng.t -> (Yield_stats.Rng.t -> 'a option) ->
  'a array
(** [run ~samples ~rng f] calls [f] with an independent child stream per
    sample and collects the successful results.  [f] returning [None] (e.g. a
    non-converging DC solve) drops the sample, so the result array may be
    shorter than [samples]. *)

val run_parallel :
  ?domains:int -> samples:int -> rng:Yield_stats.Rng.t ->
  (Yield_stats.Rng.t -> 'a option) -> 'a array
(** Like {!run} but fanned out over OCaml 5 domains (default:
    [Domain.recommended_domain_count], capped at 8).  Child streams are split
    sequentially before the fan-out and results are collected in sample
    order, so the output is {e identical} to {!run} with the same [rng].
    [f] must not share mutable state across calls. *)

type yield_estimate = {
  pass : int;
  total : int;
  yield : float;  (** pass / total *)
  ci_low : float;  (** 95 % Wilson confidence bounds *)
  ci_high : float;
}

val estimate_yield : pass:int -> total:int -> yield_estimate
(** @raise Invalid_argument when [total = 0] or [pass] outside [0, total]. *)

val yield_of : ('a -> bool) -> 'a array -> yield_estimate

val spread_pct : float array -> nominal:float -> float
(** The paper's variation measure: the larger one-sided deviation of the
    sample 3-sigma envelope from the nominal value, as a percentage of the
    nominal — i.e. the dGain/dPM columns of Table 2.  Location and scale are
    estimated robustly (median, IQR/1.349) so a single sample jumping to a
    different operating branch does not dominate the envelope.
    @raise Invalid_argument on empty samples or zero nominal. *)
