lib/table/spline.mli:
