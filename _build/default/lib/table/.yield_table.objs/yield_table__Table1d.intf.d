lib/table/table1d.mli: Control
