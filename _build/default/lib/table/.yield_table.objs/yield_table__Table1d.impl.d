lib/table/table1d.ml: Array Control Float List Spline
