lib/table/spline.ml: Array Float
