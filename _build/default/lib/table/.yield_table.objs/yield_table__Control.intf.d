lib/table/control.mli:
