lib/table/curve.ml: Array Control Float Fun List Table1d
