lib/table/grid.ml: Array Control Table1d
