lib/table/tbl_io.ml: Array Buffer Float Fun List Printf String
