lib/table/grid.mli: Control
