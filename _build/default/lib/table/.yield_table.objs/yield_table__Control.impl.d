lib/table/control.ml: List Printf String
