lib/table/tbl_io.mli:
