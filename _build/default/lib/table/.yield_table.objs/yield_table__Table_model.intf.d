lib/table/table_model.mli: Tbl_io
