lib/table/curve.mli: Control
