lib/table/table_model.ml: Array Control Curve Float Fun Grid List Table1d Tbl_io
