(* Each interval i in [0, n-2] carries coefficients of
   s_i(x) = a (x - x_i)^3 + b (x - x_i)^2 + c (x - x_i) + d            (eq. 3)
   stored as four parallel arrays. *)

type t = {
  xs : float array;
  a : float array;
  b : float array;
  c : float array;
  d : float array;
}

let validate xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Spline: length mismatch";
  if n < 2 then invalid_arg "Spline: need at least two knots";
  for i = 0 to n - 2 do
    if xs.(i) >= xs.(i + 1) then
      invalid_arg "Spline: knots must be strictly increasing"
  done

let linear xs ys =
  validate xs ys;
  let m = Array.length xs - 1 in
  let a = Array.make m 0. and b = Array.make m 0. in
  let c =
    Array.init m (fun i -> (ys.(i + 1) -. ys.(i)) /. (xs.(i + 1) -. xs.(i)))
  in
  let d = Array.init m (fun i -> ys.(i)) in
  { xs = Array.copy xs; a; b; c; d }

(* continuity of value and slope; the first segment starts with the secant
   slope, making it exactly linear *)
let quadratic xs ys =
  validate xs ys;
  let m = Array.length xs - 1 in
  let z = Array.make (m + 1) 0. in
  z.(0) <- (ys.(1) -. ys.(0)) /. (xs.(1) -. xs.(0));
  for i = 0 to m - 1 do
    let h = xs.(i + 1) -. xs.(i) in
    z.(i + 1) <- (2. *. (ys.(i + 1) -. ys.(i)) /. h) -. z.(i)
  done;
  let a = Array.make m 0. in
  let b =
    Array.init m (fun i ->
        let h = xs.(i + 1) -. xs.(i) in
        (z.(i + 1) -. z.(i)) /. (2. *. h))
  in
  let c = Array.init m (fun i -> z.(i)) in
  let d = Array.init m (fun i -> ys.(i)) in
  { xs = Array.copy xs; a; b; c; d }

(* natural cubic spline via the standard tridiagonal system in the second
   derivatives *)
let cubic xs ys =
  validate xs ys;
  let n = Array.length xs in
  if n = 2 then linear xs ys
  else begin
    let m = n - 1 in
    let h = Array.init m (fun i -> xs.(i + 1) -. xs.(i)) in
    (* tridiagonal solve for second derivatives sigma.(0..n-1), natural ends *)
    let sigma = Array.make n 0. in
    let cp = Array.make n 0. and dp = Array.make n 0. in
    (* interior equations: h_{i-1} s_{i-1} + 2(h_{i-1}+h_i) s_i + h_i s_{i+1}
       = 6((y_{i+1}-y_i)/h_i - (y_i-y_{i-1})/h_{i-1}) *)
    for i = 1 to n - 2 do
      let diag = 2. *. (h.(i - 1) +. h.(i)) in
      let rhs =
        6.
        *. (((ys.(i + 1) -. ys.(i)) /. h.(i))
           -. ((ys.(i) -. ys.(i - 1)) /. h.(i - 1)))
      in
      let lower = if i = 1 then 0. else h.(i - 1) in
      let denom = diag -. (lower *. cp.(i - 1)) in
      cp.(i) <- h.(i) /. denom;
      dp.(i) <- (rhs -. (lower *. dp.(i - 1))) /. denom
    done;
    for i = n - 2 downto 1 do
      sigma.(i) <- dp.(i) -. (cp.(i) *. sigma.(i + 1))
    done;
    let a =
      Array.init m (fun i -> (sigma.(i + 1) -. sigma.(i)) /. (6. *. h.(i)))
    in
    let b = Array.init m (fun i -> sigma.(i) /. 2.) in
    let c =
      Array.init m (fun i ->
          ((ys.(i + 1) -. ys.(i)) /. h.(i))
          -. (h.(i) *. ((2. *. sigma.(i)) +. sigma.(i + 1)) /. 6.))
    in
    let d = Array.init m (fun i -> ys.(i)) in
    { xs = Array.copy xs; a; b; c; d }
  end

(* Fritsch-Carlson: secant slopes limited so each interval's Hermite cubic
   stays within the data. *)
let monotone_cubic xs ys =
  validate xs ys;
  let n = Array.length xs in
  let m = n - 1 in
  let h = Array.init m (fun i -> xs.(i + 1) -. xs.(i)) in
  let delta = Array.init m (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  (* endpoint + interior tangents *)
  let tangents = Array.make n 0. in
  tangents.(0) <- delta.(0);
  tangents.(n - 1) <- delta.(m - 1);
  for i = 1 to n - 2 do
    if delta.(i - 1) *. delta.(i) <= 0. then tangents.(i) <- 0.
    else begin
      (* weighted harmonic mean keeps the interpolant monotone *)
      let w1 = (2. *. h.(i)) +. h.(i - 1) in
      let w2 = h.(i) +. (2. *. h.(i - 1)) in
      tangents.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
    end
  done;
  (* clamp endpoint tangents per Fritsch-Carlson *)
  let clamp_end i di =
    if di = 0. then tangents.(i) <- 0.
    else begin
      if tangents.(i) *. di < 0. then tangents.(i) <- 0.
      else if Float.abs tangents.(i) > 3. *. Float.abs di then
        tangents.(i) <- 3. *. di
    end
  in
  clamp_end 0 delta.(0);
  clamp_end (n - 1) delta.(m - 1);
  (* Hermite cubic per interval in the (x - x_i) basis *)
  let a = Array.make m 0.
  and b = Array.make m 0.
  and c = Array.make m 0.
  and d = Array.make m 0. in
  for i = 0 to m - 1 do
    let t0 = tangents.(i) and t1 = tangents.(i + 1) in
    d.(i) <- ys.(i);
    c.(i) <- t0;
    b.(i) <- ((3. *. delta.(i)) -. (2. *. t0) -. t1) /. h.(i);
    a.(i) <- (t0 +. t1 -. (2. *. delta.(i))) /. (h.(i) *. h.(i))
  done;
  { xs = Array.copy xs; a; b; c; d }

let interval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    (* binary search for the interval containing x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let i = interval t x in
  let u = x -. t.xs.(i) in
  (((((t.a.(i) *. u) +. t.b.(i)) *. u) +. t.c.(i)) *. u) +. t.d.(i)

let derivative t x =
  let i = interval t x in
  let u = x -. t.xs.(i) in
  (3. *. t.a.(i) *. u *. u) +. (2. *. t.b.(i) *. u) +. t.c.(i)

let x_min t = t.xs.(0)

let x_max t = t.xs.(Array.length t.xs - 1)

let knots t = Array.copy t.xs

let end_slopes t =
  let n = Array.length t.xs in
  (derivative t t.xs.(0), derivative t t.xs.(n - 1))
