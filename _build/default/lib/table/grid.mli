(** N-dimensional tensor-grid table: per-axis spline interpolation applied
    recursively (the gridded case of Verilog-A [$table_model]). *)

type t

val create :
  ?controls:Control.axis array ->
  axes:float array array -> values:float array -> unit -> t
(** [create ~axes ~values ()] with [axes.(i)] strictly increasing and
    [values] flattened row-major, axis 0 slowest.  Default control per axis
    is ["1C"].  @raise Invalid_argument on dimension mismatches. *)

val eval : t -> float array -> float
(** @raise Table1d.Out_of_range per axis policy.
    @raise Invalid_argument on arity mismatch. *)

val dims : t -> int array

val axes : t -> float array array
