exception Out_of_range of { value : float; lo : float; hi : float }

type t = { spline : Spline.t; control : Control.axis }

let create ?(control = Control.default_axis) xs ys =
  let spline =
    match control with
    | Control.Ignore -> invalid_arg "Table1d.create: Ignore control"
    | Control.Interpolate { degree; _ } -> begin
        match degree with
        | Control.Linear -> Spline.linear xs ys
        | Control.Quadratic -> Spline.quadratic xs ys
        | Control.Cubic -> Spline.cubic xs ys
        | Control.Monotone -> Spline.monotone_cubic xs ys
      end
  in
  { spline; control }

let of_unsorted ?control pairs =
  let sorted = Array.copy pairs in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) sorted;
  (* average duplicate abscissae so the knot sequence is strictly
     increasing *)
  let groups = ref [] in
  Array.iter
    (fun (x, y) ->
      match !groups with
      | (x0, sum, count) :: rest when x0 = x ->
          groups := (x0, sum +. y, count + 1) :: rest
      | _ -> groups := (x, y, 1) :: !groups)
    sorted;
  let cleaned =
    List.rev_map (fun (x, sum, count) -> (x, sum /. float_of_int count)) !groups
  in
  let xs = Array.of_list (List.map fst cleaned) in
  let ys = Array.of_list (List.map snd cleaned) in
  create ?control xs ys

let extrapolation t =
  match t.control with
  | Control.Ignore -> Control.Clamp
  | Control.Interpolate { extrapolation; _ } -> extrapolation

let eval t x =
  let lo = Spline.x_min t.spline and hi = Spline.x_max t.spline in
  if x >= lo && x <= hi then Spline.eval t.spline x
  else begin
    match extrapolation t with
    | Control.Error -> raise (Out_of_range { value = x; lo; hi })
    | Control.Clamp -> Spline.eval t.spline (Float.max lo (Float.min hi x))
    | Control.Extend ->
        let slo, shi = Spline.end_slopes t.spline in
        if x < lo then Spline.eval t.spline lo +. (slo *. (x -. lo))
        else Spline.eval t.spline hi +. (shi *. (x -. hi))
  end

let eval_opt t x = match eval t x with v -> Some v | exception Out_of_range _ -> None

let domain t = (Spline.x_min t.spline, Spline.x_max t.spline)

let control t = t.control
