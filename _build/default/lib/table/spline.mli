(** Piecewise-polynomial interpolation of degree 1, 2 or 3 over a strictly
    increasing knot sequence.

    Cubic splines are natural (zero second derivative at the ends); quadratic
    splines start with the secant slope of the first interval; both reproduce
    the knot values exactly.  This is the interpolation engine behind the
    Verilog-A [$table_model] substitute (paper eq. 3). *)

type t

val linear : float array -> float array -> t
(** [linear xs ys].  @raise Invalid_argument unless [xs] is strictly
    increasing, lengths match, and there are at least 2 knots. *)

val quadratic : float array -> float array -> t

val cubic : float array -> float array -> t

val monotone_cubic : float array -> float array -> t
(** Fritsch–Carlson monotone cubic (PCHIP): C^1, reproduces the knots, and
    never overshoots — on monotone data the interpolant is monotone.  An
    extension beyond Verilog-A's three degrees, provided because Pareto and
    variation tables are noisy and natural cubics ring through them. *)

val eval : t -> float -> float
(** Polynomial evaluation; outside the knot range the end segment's
    polynomial is extended (callers wanting clamp/linear/error semantics use
    {!Table1d}). *)

val derivative : t -> float -> float

val x_min : t -> float

val x_max : t -> float

val knots : t -> float array

val end_slopes : t -> float * float
(** First-derivative values at the first and last knot; used for linear
    extrapolation. *)
