type t = {
  axes : float array array;
  values : float array;
  controls : Control.axis array;
  strides : int array;
}

let create ?controls ~axes ~values () =
  let k = Array.length axes in
  if k = 0 then invalid_arg "Grid.create: no axes";
  let controls =
    match controls with
    | None -> Array.make k Control.default_axis
    | Some c ->
        if Array.length c <> k then
          invalid_arg "Grid.create: control count mismatch";
        c
  in
  Array.iter
    (fun axis ->
      if Array.length axis < 2 then invalid_arg "Grid.create: axis too short";
      for i = 0 to Array.length axis - 2 do
        if axis.(i) >= axis.(i + 1) then
          invalid_arg "Grid.create: axis not strictly increasing"
      done)
    axes;
  let total = Array.fold_left (fun acc a -> acc * Array.length a) 1 axes in
  if total <> Array.length values then
    invalid_arg "Grid.create: values length mismatch";
  let strides = Array.make k 1 in
  for i = k - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * Array.length axes.(i + 1)
  done;
  { axes; values; controls; strides }

(* Recursive separable interpolation: reduce along axis [dim] by
   interpolating the recursively evaluated sub-grids. *)
let eval t query =
  let k = Array.length t.axes in
  if Array.length query <> k then invalid_arg "Grid.eval: arity mismatch";
  let rec reduce dim offset =
    let axis = t.axes.(dim) in
    let n = Array.length axis in
    let ys =
      Array.init n (fun i ->
          let offset = offset + (i * t.strides.(dim)) in
          if dim = k - 1 then t.values.(offset) else reduce (dim + 1) offset)
    in
    let table = Table1d.create ~control:t.controls.(dim) axis ys in
    Table1d.eval table query.(dim)
  in
  reduce 0 0

let dims t = Array.map Array.length t.axes

let axes t = Array.map Array.copy t.axes
