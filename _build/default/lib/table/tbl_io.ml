type table = { columns : string array; rows : float array array }

let create ~columns ~rows =
  let k = Array.length columns in
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Tbl_io.create: ragged rows")
    rows;
  { columns; rows }

let column_index t name =
  let rec find i =
    if i >= Array.length t.columns then raise Not_found
    else if t.columns.(i) = name then i
    else find (i + 1)
  in
  find 0

let column t name =
  let i = column_index t name in
  Array.map (fun row -> row.(i)) t.rows

let column_opt t name =
  match column t name with v -> Some v | exception Not_found -> None

let n_rows t = Array.length t.rows

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# columns:";
  Array.iter (fun c -> Buffer.add_string buf (" " ^ c)) t.columns;
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%.12g" v))
        row;
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let columns = ref None in
  let rows = ref [] in
  List.iteri
    (fun lineno line ->
      let trimmed = String.trim line in
      if trimmed = "" then ()
      else if String.length trimmed > 0 && trimmed.[0] = '#' then begin
        let prefix = "# columns:" in
        if
          String.length trimmed >= String.length prefix
          && String.sub trimmed 0 (String.length prefix) = prefix
        then begin
          let names =
            String.sub trimmed (String.length prefix)
              (String.length trimmed - String.length prefix)
            |> String.split_on_char ' '
            |> List.filter (fun s -> s <> "")
          in
          columns := Some (Array.of_list names)
        end
      end
      else begin
        let fields =
          String.split_on_char ' ' trimmed
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        in
        let parse s =
          match float_of_string_opt s with
          | Some v -> v
          | None ->
              failwith
                (Printf.sprintf "Tbl_io.of_string: bad number %S on line %d" s
                   (lineno + 1))
        in
        rows := Array.of_list (List.map parse fields) :: !rows
      end)
    lines;
  let rows = Array.of_list (List.rev !rows) in
  let width = if Array.length rows = 0 then 0 else Array.length rows.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> width then failwith "Tbl_io.of_string: ragged rows")
    rows;
  let columns =
    match !columns with
    | Some c ->
        if Array.length rows > 0 && Array.length c <> width then
          failwith "Tbl_io.of_string: header/data width mismatch";
        c
    | None -> Array.init width (Printf.sprintf "c%d")
  in
  { columns; rows }

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let read ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))

let sort_by t name =
  let i = column_index t name in
  let rows = Array.copy t.rows in
  Array.sort (fun a b -> Float.compare a.(i) b.(i)) rows;
  { t with rows }
