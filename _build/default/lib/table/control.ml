type degree = Linear | Quadratic | Cubic | Monotone

type extrapolation = Clamp | Extend | Error

type axis = Interpolate of { degree : degree; extrapolation : extrapolation } | Ignore

let default_axis = Interpolate { degree = Linear; extrapolation = Clamp }

let parse_axis token =
  let token = String.trim token in
  if String.lowercase_ascii token = "i" then Ignore
  else begin
    let degree = ref Linear and extrapolation = ref Clamp in
    String.iter
      (fun ch ->
        match ch with
        | '1' -> degree := Linear
        | '2' -> degree := Quadratic
        | '3' -> degree := Cubic
        | 'm' | 'M' -> degree := Monotone
        | 'c' | 'C' -> extrapolation := Clamp
        | 'l' | 'L' -> extrapolation := Extend
        | 'e' | 'E' -> extrapolation := Error
        | ' ' -> ()
        | other ->
            invalid_arg
              (Printf.sprintf "Control.parse: unexpected character %C in %S"
                 other token))
      token;
    Interpolate { degree = !degree; extrapolation = !extrapolation }
  end

let parse s =
  if String.trim s = "" then []
  else List.map parse_axis (String.split_on_char ',' s)

let axis_to_string = function
  | Ignore -> "I"
  | Interpolate { degree; extrapolation } ->
      let d =
        match degree with
        | Linear -> "1"
        | Quadratic -> "2"
        | Cubic -> "3"
        | Monotone -> "M"
      in
      let e = match extrapolation with Clamp -> "C" | Extend -> "L" | Error -> "E" in
      d ^ e

let to_string axes = String.concat "," (List.map axis_to_string axes)
