(** The [.tbl] data-file format written for (and read back from) the
    behavioural models: whitespace-separated numeric columns, [#] comments,
    and an optional [# columns: a b c] header naming them. *)

type table = { columns : string array; rows : float array array }
(** [rows] is row-major; every row has [Array.length columns] entries. *)

val create : columns:string array -> rows:float array array -> table
(** @raise Invalid_argument on ragged rows. *)

val column : table -> string -> float array
(** @raise Not_found for an unknown column name. *)

val column_opt : table -> string -> float array option

val n_rows : table -> int

val to_string : table -> string

val of_string : string -> table
(** Columns default to [c0, c1, ...] when no header is present.
    @raise Failure on malformed numeric data or ragged rows. *)

val write : path:string -> table -> unit

val read : path:string -> table

val sort_by : table -> string -> table
(** Rows sorted ascending on the named column. *)
