(** The Verilog-A [$table_model] facade.

    [create] takes sample points (any number of input dimensions), one output
    column and a control string, and picks the right representation:

    - one input: a 1-D spline table;
    - multi-input samples that form a complete tensor grid: a {!Grid};
    - otherwise: a {!Curve} — scattered samples assumed to lie along a 1-D
      manifold (the Pareto-front case from the paper).

    Queries follow the control string's interpolation degree and
    extrapolation policy (first token for curve/1-D sources). *)

type t

type source_kind = One_dimensional | Gridded | Scattered_curve

val create :
  ?control:string -> inputs:float array array -> output:float array -> unit -> t
(** [inputs] is [n x k]; [output] has [n] entries.  Default control ["1C"]
    for every dimension.  @raise Invalid_argument on shape errors. *)

val of_table :
  ?control:string -> Tbl_io.table -> inputs:string list -> output:string -> t
(** Build from named columns of a [.tbl] table.
    @raise Not_found for unknown column names. *)

val kind : t -> source_kind

val arity : t -> int

val eval : t -> float array -> float
(** @raise Table1d.Out_of_range under an [E] policy.
    @raise Invalid_argument on arity mismatch. *)

val eval1 : t -> float -> float

val eval2 : t -> float -> float -> float
