(** Verilog-A [$table_model] control strings.

    One token per table dimension, comma separated.  A token is an optional
    interpolation degree digit followed by an optional extrapolation letter:

    - degree: ['1'] linear, ['2'] quadratic, ['3'] cubic (default linear);
      as an extension beyond Verilog-A, ['M'] selects monotone cubic
      (Fritsch–Carlson), which cannot ring through noisy tables
    - extrapolation: ['C'] clamp to the end value, ['L'] extend linearly with
      the end slope, ['E'] error — queries outside the sampled range are
      rejected (default clamp)
    - ['I'] ignore this dimension entirely

    The paper's models use ["3E"]: cubic splines, no extrapolation. *)

type degree = Linear | Quadratic | Cubic | Monotone

type extrapolation = Clamp | Extend | Error

type axis = Interpolate of { degree : degree; extrapolation : extrapolation } | Ignore

val default_axis : axis
(** Linear interpolation, clamped extrapolation. *)

val parse : string -> axis list
(** @raise Invalid_argument on malformed tokens. *)

val parse_axis : string -> axis

val to_string : axis list -> string

val axis_to_string : axis -> string
