(** Scattered table over a one-dimensional manifold.

    The paper's two-input tables ([lp_i = table(gain_prop, pm_prop)]) are
    sampled on the Pareto front, which is a curve — not a grid — in the
    (gain, PM) plane.  This module parametrises the sample points by arc
    length (in the per-dimension normalised input space), projects queries
    onto the polyline through the points, and interpolates every output
    column along the arc with the requested spline degree. *)

type t

val create :
  ?control:Control.axis ->
  ?min_spacing:float ->
  inputs:float array array ->
  columns:(string * float array) list ->
  unit -> t
(** [inputs] is an [n x k] array of sample coordinates ordered along the
    curve; each column has [n] values.  Consecutive duplicate points are
    merged, and points closer than [min_spacing] (relative to the total arc
    length, default 1e-3) are decimated — near-coincident knots make
    higher-degree splines ring.  The first and last points are always kept.
    @raise Invalid_argument on shape mismatch or fewer than two distinct
    points. *)

val dimension : t -> int

val column_names : t -> string list

val arc_length : t -> float
(** Total arc length (normalised space). *)

val knot_arcs : t -> float array
(** Arc coordinates of the (merged, decimated) knots, strictly increasing
    from 0 to [arc_length]. *)

val bracket : t -> float -> int * int * float
(** [bracket t arc] is [(i, j, u)]: the knot interval containing [arc]
    ([j = i + 1] except at the ends) and the local parameter
    [u = (arc - arc_i) / (arc_j - arc_i)] clamped to [0, 1]. *)

val project : t -> float array -> float * float
(** [project t q] is [(arc, distance)]: the arc coordinate of the closest
    point of the polyline to [q] and the Euclidean distance to it, both in
    normalised space.  The distance is a model-trust diagnostic: queries far
    from the front are extrapolations in disguise. *)

val eval : t -> string -> float array -> float
(** [eval t column q]: interpolated column value at the projection of [q].
    @raise Not_found for an unknown column. *)

val eval_at_arc : t -> string -> float -> float
(** Direct evaluation at an arc coordinate in [0, arc_length]. *)

val eval_all : t -> float array -> (string * float) list
