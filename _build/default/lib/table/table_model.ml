type source = D1 of Table1d.t | Dn of Grid.t | Curve of Curve.t

type t = { source : source; arity : int }

type source_kind = One_dimensional | Gridded | Scattered_curve

let axis_controls control k =
  let parsed = Control.parse control in
  let axes = Array.make k Control.default_axis in
  List.iteri (fun i a -> if i < k then axes.(i) <- a) parsed;
  axes

(* Detect whether the sample points fill a complete tensor grid; if so,
   return the axes and the row-major value array. *)
let detect_grid inputs output =
  let n = Array.length inputs in
  let k = Array.length inputs.(0) in
  let axes =
    Array.init k (fun j ->
        let vals = Array.map (fun row -> row.(j)) inputs in
        let sorted = List.sort_uniq Float.compare (Array.to_list vals) in
        Array.of_list sorted)
  in
  let total = Array.fold_left (fun acc a -> acc * Array.length a) 1 axes in
  if total <> n then None
  else begin
    let strides = Array.make k 1 in
    for i = k - 2 downto 0 do
      strides.(i) <- strides.(i + 1) * Array.length axes.(i + 1)
    done;
    let index_of j v =
      let axis = axes.(j) in
      let rec find i = if axis.(i) = v then i else find (i + 1) in
      find 0
    in
    let values = Array.make total nan in
    let ok = ref true in
    Array.iteri
      (fun r row ->
        let offset = ref 0 in
        Array.iteri (fun j v -> offset := !offset + (index_of j v * strides.(j))) row;
        if Float.is_nan values.(!offset) then values.(!offset) <- output.(r)
        else ok := false (* duplicate point *))
      inputs;
    if !ok && Array.for_all (fun v -> not (Float.is_nan v)) values then
      Some (axes, values)
    else None
  end

let create ?(control = "1C") ~inputs ~output () =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Table_model.create: no samples";
  if Array.length output <> n then
    invalid_arg "Table_model.create: output length mismatch";
  let k = Array.length inputs.(0) in
  if k = 0 then invalid_arg "Table_model.create: zero-dimensional inputs";
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Table_model.create: ragged inputs")
    inputs;
  let controls = axis_controls control k in
  if k = 1 then begin
    let pairs = Array.mapi (fun i row -> (row.(0), output.(i))) inputs in
    { source = D1 (Table1d.of_unsorted ~control:controls.(0) pairs); arity = 1 }
  end
  else begin
    match detect_grid inputs output with
    | Some (axes, values) ->
        { source = Dn (Grid.create ~controls ~axes ~values ()); arity = k }
    | None ->
        (* scattered: assume a 1-D manifold, ordered along the first input *)
        let order = Array.init n Fun.id in
        Array.sort
          (fun a b -> Float.compare inputs.(a).(0) inputs.(b).(0))
          order;
        let sorted_inputs = Array.map (fun i -> inputs.(i)) order in
        let sorted_output = Array.map (fun i -> output.(i)) order in
        let curve =
          Curve.create ~control:controls.(0) ~inputs:sorted_inputs
            ~columns:[ ("y", sorted_output) ]
            ()
        in
        { source = Curve curve; arity = k }
  end

let of_table ?control table ~inputs ~output =
  let input_cols = List.map (fun name -> Tbl_io.column table name) inputs in
  let out = Tbl_io.column table output in
  let n = Array.length out in
  let input_rows =
    Array.init n (fun i ->
        Array.of_list (List.map (fun col -> col.(i)) input_cols))
  in
  create ?control ~inputs:input_rows ~output:out ()

let kind t =
  match t.source with
  | D1 _ -> One_dimensional
  | Dn _ -> Gridded
  | Curve _ -> Scattered_curve

let arity t = t.arity

let eval t q =
  if Array.length q <> t.arity then invalid_arg "Table_model.eval: arity mismatch";
  match t.source with
  | D1 table -> Table1d.eval table q.(0)
  | Dn grid -> Grid.eval grid q
  | Curve curve -> Curve.eval curve "y" q

let eval1 t x = eval t [| x |]

let eval2 t x y = eval t [| x; y |]
