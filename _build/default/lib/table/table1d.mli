(** One-dimensional table model: spline interpolation plus a Verilog-A
    extrapolation policy. *)

exception Out_of_range of { value : float; lo : float; hi : float }
(** Raised by queries outside the sampled range under the [Error] policy
    (the paper's ["3E"] tables). *)

type t

val create : ?control:Control.axis -> float array -> float array -> t
(** [create xs ys] with [xs] strictly increasing.  Default control is
    ["1C"].  @raise Invalid_argument on bad knots or an [Ignore] control. *)

val of_unsorted : ?control:Control.axis -> (float * float) array -> t
(** Sorts by abscissa and averages duplicate abscissae first. *)

val eval : t -> float -> float
(** @raise Out_of_range per the control policy. *)

val eval_opt : t -> float -> float option
(** [None] instead of raising. *)

val domain : t -> float * float

val control : t -> Control.axis
