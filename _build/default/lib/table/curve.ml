type t = {
  points : float array array;  (* n x k, normalised coordinates *)
  arcs : float array;  (* cumulative arc length, strictly increasing *)
  lo : float array;  (* per-dimension normalisation *)
  span : float array;
  tables : (string * Table1d.t) list;  (* column splines over arc length *)
}

let normalise lo span q =
  Array.mapi (fun j x -> (x -. lo.(j)) /. span.(j)) q

let distance2 a b =
  let acc = ref 0. in
  Array.iteri
    (fun j x ->
      let d = x -. b.(j) in
      acc := !acc +. (d *. d))
    a;
  !acc

let create ?(control = Control.default_axis) ?(min_spacing = 1e-3) ~inputs
    ~columns () =
  let n = Array.length inputs in
  if n < 2 then invalid_arg "Curve.create: need at least two points";
  let k = Array.length inputs.(0) in
  if k = 0 then invalid_arg "Curve.create: zero-dimensional points";
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Curve.create: ragged inputs")
    inputs;
  List.iter
    (fun (name, col) ->
      if Array.length col <> n then
        invalid_arg ("Curve.create: column length mismatch for " ^ name))
    columns;
  (* per-dimension normalisation so arc length weights dimensions equally *)
  let lo = Array.make k infinity and hi = Array.make k neg_infinity in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j x ->
          lo.(j) <- Float.min lo.(j) x;
          hi.(j) <- Float.max hi.(j) x)
        row)
    inputs;
  let span = Array.init k (fun j -> if hi.(j) > lo.(j) then hi.(j) -. lo.(j) else 1.) in
  let normed = Array.map (normalise lo span) inputs in
  (* merge consecutive duplicates, keeping the first occurrence *)
  let keep = Array.make n true in
  for i = 1 to n - 1 do
    if distance2 normed.(i) normed.(i - 1) < 1e-24 then keep.(i) <- false
  done;
  let indices =
    Array.to_list (Array.init n Fun.id) |> List.filter (fun i -> keep.(i))
  in
  if List.length indices < 2 then
    invalid_arg "Curve.create: fewer than two distinct points";
  (* decimate near-coincident knots: total arc first, then enforce a
     minimum relative spacing (keeping the end points) *)
  let total_arc idxs =
    let rec walk acc = function
      | i :: (j :: _ as rest) ->
          walk (acc +. sqrt (distance2 normed.(i) normed.(j))) rest
      | [ _ ] | [] -> acc
    in
    walk 0. idxs
  in
  let total = total_arc indices in
  let min_step = min_spacing *. total in
  let indices =
    match indices with
    | [] -> []
    | first :: rest ->
        let last = List.nth indices (List.length indices - 1) in
        let _, selected =
          List.fold_left
            (fun (kept, acc) i ->
              let step = sqrt (distance2 normed.(i) normed.(kept)) in
              if i = last || step >= min_step then (i, i :: acc)
              else (kept, acc))
            (first, [ first ]) rest
        in
        List.rev selected
  in
  let indices =
    (* decimation may leave the final point too close to its predecessor;
       drop the predecessor rather than the end point *)
    match List.rev indices with
    | last :: prev :: rest
      when sqrt (distance2 normed.(last) normed.(prev)) < 1e-12 ->
        List.rev (last :: rest)
    | _ -> indices
  in
  if List.length indices < 2 then
    invalid_arg "Curve.create: fewer than two distinct points";
  let points = Array.of_list (List.map (fun i -> normed.(i)) indices) in
  let m = Array.length points in
  let arcs = Array.make m 0. in
  for i = 1 to m - 1 do
    arcs.(i) <- arcs.(i - 1) +. sqrt (distance2 points.(i) points.(i - 1))
  done;
  let tables =
    List.map
      (fun (name, col) ->
        let ys = Array.of_list (List.map (fun i -> col.(i)) indices) in
        (name, Table1d.create ~control arcs ys))
      columns
  in
  { points; arcs; lo; span; tables }

let dimension t = Array.length t.lo

let column_names t = List.map fst t.tables

let arc_length t = t.arcs.(Array.length t.arcs - 1)

let knot_arcs t = Array.copy t.arcs

let bracket t arc =
  let n = Array.length t.arcs in
  if arc <= t.arcs.(0) then (0, 1, 0.)
  else if arc >= t.arcs.(n - 1) then (n - 2, n - 1, 1.)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.arcs.(mid) <= arc then lo := mid else hi := mid
    done;
    let span = t.arcs.(!hi) -. t.arcs.(!lo) in
    let u = if span <= 0. then 0. else (arc -. t.arcs.(!lo)) /. span in
    (!lo, !hi, Float.max 0. (Float.min 1. u))
  end

(* closest point on segment [a, b] to q; returns (param in [0,1], dist2) *)
let project_segment a b q =
  let k = Array.length a in
  let num = ref 0. and den = ref 0. in
  for j = 0 to k - 1 do
    let d = b.(j) -. a.(j) in
    num := !num +. (d *. (q.(j) -. a.(j)));
    den := !den +. (d *. d)
  done;
  let tparam = if !den <= 0. then 0. else Float.max 0. (Float.min 1. (!num /. !den)) in
  let acc = ref 0. in
  for j = 0 to k - 1 do
    let p = a.(j) +. (tparam *. (b.(j) -. a.(j))) in
    let d = q.(j) -. p in
    acc := !acc +. (d *. d)
  done;
  (tparam, !acc)

let project t q =
  if Array.length q <> dimension t then invalid_arg "Curve.project: arity mismatch";
  let qn = normalise t.lo t.span q in
  let best_arc = ref 0. and best_d2 = ref infinity in
  for i = 0 to Array.length t.points - 2 do
    let tparam, d2 = project_segment t.points.(i) t.points.(i + 1) qn in
    if d2 < !best_d2 then begin
      best_d2 := d2;
      best_arc := t.arcs.(i) +. (tparam *. (t.arcs.(i + 1) -. t.arcs.(i)))
    end
  done;
  (!best_arc, sqrt !best_d2)

let eval_at_arc t name arc =
  match List.assoc_opt name t.tables with
  | Some table -> Table1d.eval table arc
  | None -> raise Not_found

let eval t name q =
  let arc, _ = project t q in
  eval_at_arc t name arc

let eval_all t q =
  let arc, _ = project t q in
  List.map (fun (name, table) -> (name, Table1d.eval table arc)) t.tables
