(** The generic characterisation testbenches instantiated for the two-stage
    Miller OTA; see {!Testbench} for the interface and {!Ota_testbench} for
    the paper's primary circuit. *)

val build :
  ?conditions:Testbench.conditions -> Miller.params ->
  Yield_spice.Circuit.t * string

val bode_of_circuit :
  ?conditions:Testbench.conditions -> Yield_spice.Circuit.t ->
  Yield_spice.Ac.bode option

val bode :
  ?conditions:Testbench.conditions -> Miller.params ->
  Yield_spice.Ac.bode option

val evaluate :
  ?conditions:Testbench.conditions -> Miller.params -> Testbench.perf option

val evaluate_sampled :
  ?conditions:Testbench.conditions -> spec:Yield_process.Variation.spec ->
  rng:Yield_stats.Rng.t -> Miller.params -> Testbench.perf option

val evaluate_with_draw :
  ?conditions:Testbench.conditions -> spec:Yield_process.Variation.spec ->
  draw:Yield_process.Variation.global_draw -> Miller.params ->
  Testbench.perf option

val cmrr_db : ?conditions:Testbench.conditions -> Miller.params -> float option

val psrr_db : ?conditions:Testbench.conditions -> Miller.params -> float option

val input_referred_noise :
  ?conditions:Testbench.conditions -> ?flicker:Yield_spice.Noise.flicker ->
  Miller.params -> ((float * float) array * float) option

val step_response :
  ?conditions:Testbench.conditions -> ?amplitude:float -> ?t_stop:float ->
  ?dt:float -> Miller.params -> (float array * float array) option

val step_perf :
  ?conditions:Testbench.conditions -> ?amplitude:float -> ?t_stop:float ->
  ?dt:float -> Miller.params -> Testbench.step_perf option
