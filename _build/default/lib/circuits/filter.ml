module Circuit = Yield_spice.Circuit
module Dcop = Yield_spice.Dcop
module Ac = Yield_spice.Ac
module Measure = Yield_spice.Measure
module Genome = Yield_ga.Genome
module Wbga = Yield_ga.Wbga
module Ga = Yield_ga.Ga

type amp = { gain_db : float; rout : float }

let gm_of_amp amp = 10. ** (amp.gain_db /. 20.) /. amp.rout

type caps = { c1 : float; c2 : float; c3 : float }

let cap_ranges =
  [|
    Genome.log_range "c1" ~lo:5e-12 ~hi:400e-12;
    Genome.log_range "c2" ~lo:2e-12 ~hi:200e-12;
    Genome.log_range "c3" ~lo:0.1e-12 ~hi:20e-12;
  |]

let caps_of_array = function
  | [| c1; c2; c3 |] -> { c1; c2; c3 }
  | _ -> invalid_arg "Filter.caps_of_array: need 3 values"

let caps_to_array c = [| c.c1; c.c2; c.c3 |]

type spec = {
  f_pass : float;
  ripple_db : float;
  f_stop : float;
  atten_db : float;
}

let default_spec =
  { f_pass = 1e6; ripple_db = 1.; f_stop = 10e6; atten_db = 30. }

(* One behavioural OTA: current g*(v+ - v-) INTO the output node, shunted by
   rout.  With our VCCS convention (current gm*(in_p - in_n) leaves out_p),
   injecting requires the input pair swapped. *)
let add_behavioural_ota circuit ~name amp ~vplus ~vminus ~out =
  let g = gm_of_amp amp in
  Circuit.add_vccs circuit ~name:(name ^ ".G") ~out_p:out ~out_n:"0"
    ~in_p:vminus ~in_n:vplus g;
  Circuit.add_resistor circuit ~name:(name ^ ".RO") out "0" amp.rout

let add_caps circuit caps =
  Circuit.add_capacitor circuit ~name:"C1" "v1" "0" caps.c1;
  Circuit.add_capacitor circuit ~name:"C2" "out" "0" caps.c2;
  Circuit.add_capacitor circuit ~name:"C3" "v1" "out" caps.c3

let build amp caps =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VIN" ~ac:1. "in" "0" 0.;
  add_behavioural_ota c ~name:"OTA1" amp ~vplus:"in" ~vminus:"out" ~out:"v1";
  add_behavioural_ota c ~name:"OTA2" amp ~vplus:"v1" ~vminus:"out" ~out:"out";
  add_caps c caps;
  (c, "out")

let default_freqs = lazy (Ac.default_freqs ~per_decade:20 ~f_lo:1e3 ~f_hi:1e8 ())

let response_of_circuit ?freqs circuit ~out =
  let freqs = match freqs with Some f -> f | None -> Lazy.force default_freqs in
  match Dcop.solve circuit with
  | Error _ -> None
  | Ok op -> Some (Ac.transfer_by_name circuit op ~out ~freqs)

let response ?freqs amp caps =
  let circuit, out = build amp caps in
  response_of_circuit ?freqs circuit ~out

let build_transistor ?(tech = Yield_process.Tech.c35) ?(vcm = 1.65) ota_params
    caps =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" tech.Yield_process.Tech.vdd;
  Circuit.add_vsource c ~name:"VIN" ~ac:1. "in" "0" vcm;
  (* the OTA's [inp] port (M1 gate) is its inverting input *)
  Ota.add c ~prefix:"x1." ~tech ~params:ota_params ~inp:"out" ~inn:"in"
    ~out:"v1" ~vdd:"vdd" ~vss:"0";
  Ota.add c ~prefix:"x2." ~tech ~params:ota_params ~inp:"out" ~inn:"v1"
    ~out:"out" ~vdd:"vdd" ~vss:"0";
  add_caps c caps;
  Circuit.nodeset c (Circuit.node c "v1") vcm;
  Circuit.nodeset c (Circuit.node c "out") vcm;
  (c, "out")

let response_transistor ?freqs ?tech ?vcm ota_params caps =
  let circuit, out = build_transistor ?tech ?vcm ota_params caps in
  response_of_circuit ?freqs circuit ~out

type check = {
  passband_margin_db : float;
  stopband_margin_db : float;
  meets_spec : bool;
}

let check spec (bode : Ac.bode) =
  let mags = Measure.magnitudes_db bode in
  let dc = mags.(0) in
  let pass_margin = ref infinity and stop_margin = ref infinity in
  Array.iteri
    (fun i f ->
      if f <= spec.f_pass then
        pass_margin :=
          Float.min !pass_margin (spec.ripple_db -. Float.abs (mags.(i) -. dc));
      if f >= spec.f_stop then
        stop_margin := Float.min !stop_margin (dc -. mags.(i) -. spec.atten_db))
    bode.Ac.freqs;
  let pm = !pass_margin and sm = !stop_margin in
  {
    passband_margin_db = pm;
    stopband_margin_db = sm;
    meets_spec = pm >= 0. && sm >= 0.;
  }

let evaluate amp spec caps =
  match response amp caps with
  | None -> Error "filter DC solve failed"
  | Some bode -> Ok (check spec bode)

type optimise_result = {
  best : caps;
  best_check : check;
  front : (caps * check) array;
  evaluations : int;
}

let optimise ?(population = 30) ?(generations = 40) amp spec rng =
  let evaluate_array arr =
    let caps = caps_of_array arr in
    match evaluate amp spec caps with
    | Error _ -> None
    | Ok c -> Some [| c.passband_margin_db; c.stopband_margin_db |]
  in
  (* blend crossover + frequent small mutations: the in-spec region is a
     narrow slice of the capacitance space, and arithmetic recombination of
     the two mask-margin extremes lands inside it reliably *)
  let config =
    {
      Ga.default_config with
      Ga.population_size = population;
      generations;
      crossover = Yield_ga.Operators.Blend 0.3;
      mutation = Yield_ga.Operators.Gaussian { sigma = 0.05; rate = 0.4 };
    }
  in
  let result =
    Wbga.run ~config ~param_ranges:cap_ranges
      ~objectives:
        [|
          { Wbga.name = "passband_margin"; maximise = true };
          { Wbga.name = "stopband_margin"; maximise = true };
        |]
      ~rng ~evaluate:evaluate_array ()
  in
  let to_pair (e : Wbga.entry) =
    let caps = caps_of_array e.Wbga.params in
    let margins = e.Wbga.objectives in
    ( caps,
      {
        passband_margin_db = margins.(0);
        stopband_margin_db = margins.(1);
        meets_spec = margins.(0) >= 0. && margins.(1) >= 0.;
      } )
  in
  let front = Array.map to_pair result.Wbga.front in
  if Array.length front = 0 then failwith "Filter.optimise: no evaluable design";
  (* best = maximin of the two margins: the most robustly in-spec design *)
  let score (_, c) = Float.min c.passband_margin_db c.stopband_margin_db in
  let best, best_check =
    Array.fold_left
      (fun acc cand -> if score cand > score acc then cand else acc)
      front.(0) front
  in
  { best; best_check; front; evaluations = result.Wbga.evaluations }
