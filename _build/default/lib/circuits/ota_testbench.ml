(* The paper's §4 characterisation of the symmetrical OTA: the generic
   testbench machinery instantiated for {!Ota}, with the record types
   re-exported so downstream modules can build conditions directly. *)

module Tech = Yield_process.Tech

type conditions = Testbench.conditions = {
  tech : Tech.t;
  vcm : float;
  load_cap : float;
  f_lo : float;
  f_hi : float;
  points_per_decade : int;
  min_unity_gain_hz : float;
}

let default_conditions = Testbench.default_conditions

type perf = Testbench.perf = {
  gain_db : float;
  phase_margin_deg : float;
  unity_gain_hz : float;
  f3db_hz : float;
  rout_est : float;
}

type step_perf = Testbench.step_perf = {
  slew_v_per_us : float;
  settling_1pct_s : float option;
  overshoot_pct : float;
  final_error_v : float;
}

let perf_of_bode = Testbench.perf_of_bode

let feasible = Testbench.feasible

let objectives = Testbench.objectives

include Testbench.Make (Ota)
