(** Open-loop testbench for the OTA (the paper's §4.2 objective-function
    evaluation): DC feedback through a large resistor with an AC-grounding
    capacitor on the inverting input — the standard Spectre loop-breaking
    arrangement — a load capacitor, and an AC sweep from which open-loop gain
    and phase margin are extracted. *)

type conditions = Testbench.conditions = {
  tech : Yield_process.Tech.t;
  vcm : float;  (** input common-mode voltage, V *)
  load_cap : float;  (** F *)
  f_lo : float;
  f_hi : float;
  points_per_decade : int;
  min_unity_gain_hz : float;
      (** design constraint (paper eq. 1, g_j(x) >= 0): the filter
          application needs adequate OTA bandwidth, so designs whose
          unity-gain frequency falls below this are infeasible *)
}

val default_conditions : conditions

type perf = Testbench.perf = {
  gain_db : float;  (** open-loop gain at the lowest frequency *)
  phase_margin_deg : float;
  unity_gain_hz : float;
  f3db_hz : float;
  rout_est : float;
      (** single-pole output-resistance estimate
          [gain_lin / (2 pi f_u C_load)], the [ro] used by the behavioural
          model *)
}

val build :
  ?conditions:conditions -> Ota.params -> Yield_spice.Circuit.t * string
(** The testbench circuit and the output node name. *)

val bode : ?conditions:conditions -> Ota.params -> Yield_spice.Ac.bode option
(** Full open-loop transfer function; [None] if the DC solve fails. *)

val bode_of_circuit :
  ?conditions:conditions -> Yield_spice.Circuit.t -> Yield_spice.Ac.bode option
(** Run the sweep on an externally perturbed copy of the testbench (the
    Monte Carlo path). *)

val perf_of_bode : conditions -> Yield_spice.Ac.bode -> perf option
(** [None] when the response has no unity crossing. *)

val evaluate : ?conditions:conditions -> Ota.params -> perf option
(** DC + AC + extraction in one call; [None] on any failure.  This is the
    objective function handed to the optimiser. *)

val evaluate_sampled :
  ?conditions:conditions ->
  spec:Yield_process.Variation.spec ->
  rng:Yield_stats.Rng.t ->
  Ota.params ->
  perf option
(** Like {!evaluate} but with one Monte Carlo draw of process variation and
    mismatch applied to every transistor. *)

val evaluate_with_draw :
  ?conditions:conditions ->
  spec:Yield_process.Variation.spec ->
  draw:Yield_process.Variation.global_draw ->
  Ota.params ->
  perf option
(** Deterministic evaluation under a specific global draw with mismatch
    disabled — the hook for sensitivity analysis and corner-style studies. *)

val cmrr_db : ?conditions:conditions -> Ota.params -> float option
(** Common-mode rejection ratio at the low-frequency end: the differential
    testbench's gain over the gain measured when both inputs move together
    (the AC-grounding capacitor's far terminal is driven instead of
    grounded, so the loop-breaking arrangement is identical). *)

val psrr_db : ?conditions:conditions -> Ota.params -> float option
(** Positive-supply rejection at the low-frequency end: differential gain
    over the supply-to-output gain. *)

val input_referred_noise :
  ?conditions:conditions -> ?flicker:Yield_spice.Noise.flicker -> Ota.params ->
  ((float * float) array * float) option
(** Input-referred noise PSD across the sweep and the integrated RMS noise
    from [f_lo] to the unity-gain frequency. *)

type step_perf = Testbench.step_perf = {
  slew_v_per_us : float;
  settling_1pct_s : float option;
  overshoot_pct : float;
  final_error_v : float;  (** |final output - target|, the follower's gain error *)
}

val step_response :
  ?conditions:conditions -> ?amplitude:float -> ?t_stop:float -> ?dt:float ->
  Ota.params -> (float array * float array) option
(** Unity-gain follower step response: the OTA's output follows a
    [amplitude]-volt input step (default 0.5 V around the common mode).
    Returns (times, output voltage); [None] if the transient fails. *)

val step_perf :
  ?conditions:conditions -> ?amplitude:float -> ?t_stop:float -> ?dt:float ->
  Ota.params -> step_perf option
(** Slew rate, 1 % settling time and overshoot extracted from
    {!step_response}. *)

val feasible : conditions -> perf -> bool
(** The eq. 1 constraint set: positive phase margin and unity-gain frequency
    above the floor. *)

val objectives : perf -> float array
(** [[| gain_db; phase_margin_deg |]] — the two paper objectives. *)
