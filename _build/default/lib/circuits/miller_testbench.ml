include Testbench.Make (Miller)
