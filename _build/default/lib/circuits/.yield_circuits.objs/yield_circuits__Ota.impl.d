lib/circuits/ota.ml: Array Float String Yield_ga Yield_process Yield_spice
