lib/circuits/amplifier.mli: Yield_ga Yield_process Yield_spice
