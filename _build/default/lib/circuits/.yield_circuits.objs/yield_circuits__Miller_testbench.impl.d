lib/circuits/miller_testbench.ml: Miller Testbench
