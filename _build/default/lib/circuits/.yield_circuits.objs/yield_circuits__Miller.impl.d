lib/circuits/miller.ml: Array String Yield_ga Yield_process Yield_spice
