lib/circuits/miller.mli: Yield_ga Yield_process Yield_spice
