lib/circuits/ota_testbench.mli: Ota Testbench Yield_process Yield_spice Yield_stats
