lib/circuits/filter.ml: Array Float Lazy Ota Yield_ga Yield_process Yield_spice
