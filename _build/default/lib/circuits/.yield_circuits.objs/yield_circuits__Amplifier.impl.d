lib/circuits/amplifier.ml: Yield_ga Yield_process Yield_spice
