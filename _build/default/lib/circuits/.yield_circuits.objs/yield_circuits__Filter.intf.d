lib/circuits/filter.mli: Ota Yield_ga Yield_process Yield_spice Yield_stats
