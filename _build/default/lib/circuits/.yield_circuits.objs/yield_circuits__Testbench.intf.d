lib/circuits/testbench.mli: Amplifier Yield_process Yield_spice Yield_stats
