lib/circuits/testbench.ml: Amplifier Array Float List Option Yield_process Yield_spice Yield_stats
