lib/circuits/ota.mli: Yield_ga Yield_process Yield_spice
