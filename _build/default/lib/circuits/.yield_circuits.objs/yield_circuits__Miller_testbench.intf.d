lib/circuits/miller_testbench.mli: Miller Testbench Yield_process Yield_spice Yield_stats
