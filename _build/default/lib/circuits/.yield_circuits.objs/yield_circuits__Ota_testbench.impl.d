lib/circuits/ota_testbench.ml: Ota Testbench Yield_process
