(** The paper's §5 application: a 2nd-order low-pass anti-aliasing filter
    designed around the OTA behavioural model.

    Fig. 9 gives only the schematic (OTA symbols and capacitors C1–C3); we
    realise it as the canonical two-OTA gm-C biquad — OTAs drive only
    capacitors, which is what an OTA can do:

    {v
      OTA1: V+ = vin, V- = vout, output -> v1,   C1: v1 -> gnd
      OTA2: V+ = v1,  V- = vout, output -> vout, C2: vout -> gnd
      C3: v1 -> vout (bridge/trim capacitor)
    v}

    With transconductances g (equal OTAs) and ideal outputs,
    [H(s) = g^2 / (s^2 C1 C2 + s C1 g + g^2)]: a unity-DC-gain low-pass with
    [w0 = g / sqrt(C1 C2)] and [Q = sqrt(C2 / C1)].  The behavioural OTA is
    the paper's Verilog-A output stage [V(out) <+ -A*V(in) - I(out)*ro],
    whose Norton form is a transconductor [g = A/ro] with output resistance
    [ro] — the finite-gain and loading effects are therefore part of the
    simulation, as they are at transistor level. *)

type amp = {
  gain_db : float;  (** open-loop gain A in dB *)
  rout : float;  (** output resistance, Ohm *)
}

val gm_of_amp : amp -> float
(** The equivalent transconductance [A / ro]. *)

type caps = { c1 : float; c2 : float; c3 : float }

val cap_ranges : Yield_ga.Genome.range array
(** Designer constraints for the optimisation: C1 in [5 pF, 400 pF],
    C2 in [2 pF, 200 pF], C3 in [0.1 pF, 20 pF]. *)

val caps_of_array : float array -> caps

val caps_to_array : caps -> float array

type spec = {
  f_pass : float;  (** passband edge, Hz *)
  ripple_db : float;  (** max deviation from DC gain within the passband *)
  f_stop : float;  (** stopband edge, Hz *)
  atten_db : float;  (** min attenuation beyond the stopband edge *)
}

val default_spec : spec
(** Anti-aliasing mask (Fig. 10): 1 MHz passband at +-1 dB, >= 30 dB
    attenuation beyond 10 MHz. *)

val build : amp -> caps -> Yield_spice.Circuit.t * string
(** Filter circuit (behavioural OTAs) and the output node name. *)

val response :
  ?freqs:float array -> amp -> caps -> Yield_spice.Ac.bode option
(** AC response relative to the input; default grid 1 kHz - 100 MHz. *)

val build_transistor :
  ?tech:Yield_process.Tech.t -> ?vcm:float -> Ota.params -> caps ->
  Yield_spice.Circuit.t * string
(** The same biquad with both OTAs realised at transistor level (§4's OTA) —
    the verification path of Figure 11. *)

val response_of_circuit :
  ?freqs:float array -> Yield_spice.Circuit.t -> out:string ->
  Yield_spice.Ac.bode option
(** AC response of an already-built (possibly Monte Carlo-perturbed) filter
    circuit. *)

val response_transistor :
  ?freqs:float array -> ?tech:Yield_process.Tech.t -> ?vcm:float ->
  Ota.params -> caps -> Yield_spice.Ac.bode option

type check = {
  passband_margin_db : float;
      (** min over the passband of [ripple - |gain - dc_gain|]; >= 0 when the
          passband mask holds *)
  stopband_margin_db : float;
      (** min over the stopband of [attenuation achieved - attenuation
          required]; >= 0 when the stopband mask holds *)
  meets_spec : bool;
}

val check : spec -> Yield_spice.Ac.bode -> check

val evaluate : amp -> spec -> caps -> (check, string) result

type optimise_result = {
  best : caps;
  best_check : check;
  front : (caps * check) array;
  evaluations : int;
}

val optimise :
  ?population:int -> ?generations:int ->
  amp -> spec -> Yield_stats.Rng.t -> optimise_result
(** The paper's §5 MOO (default 30 individuals, 40 generations): maximise
    passband and stopband margins; [best] maximises the smaller of the two
    margins.  @raise Failure if no evaluable design was found. *)
