type t =
  | Normal of { mean : float; sigma : float }
  | Uniform of { lo : float; hi : float }
  | Lognormal of { mu : float; sigma : float }
  | Triangular of { lo : float; mode : float; hi : float }

(* max error 1.2e-7; adequate for yield estimates quoted to a percent *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
     -. 0.284496736)
     *. t)
    +. 0.254829592
  in
  sign *. (1. -. (poly *. t *. exp (-.x *. x)))

let normal_cdf ~mean ~sigma x =
  0.5 *. (1. +. erf ((x -. mean) /. (sigma *. sqrt 2.)))

(* Acklam's algorithm for the inverse normal CDF, then one Halley refinement
   step using the forward CDF above. *)
let standard_normal_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Dist.normal_quantile: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let tail q =
    let num =
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
    in
    let den =
      ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.
    in
    num /. den
  in
  let x =
    if p < p_low then tail (sqrt (-2. *. log p))
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. (((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r
           +. b.(4))
           *. r
          +. 1.))
    end
    else -.tail (sqrt (-2. *. log (1. -. p)))
  in
  (* Halley refinement *)
  let e = normal_cdf ~mean:0. ~sigma:1. x -. p in
  let u = e *. sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

let normal_quantile ~mean ~sigma p = mean +. (sigma *. standard_normal_quantile p)

let sample d rng =
  match d with
  | Normal { mean; sigma } -> Rng.normal rng ~mean ~sigma
  | Uniform { lo; hi } -> Rng.uniform rng lo hi
  | Lognormal { mu; sigma } -> exp (Rng.normal rng ~mean:mu ~sigma)
  | Triangular { lo; mode; hi } ->
      let u = Rng.float rng in
      let fc = (mode -. lo) /. (hi -. lo) in
      if u < fc then lo +. sqrt (u *. (hi -. lo) *. (mode -. lo))
      else hi -. sqrt ((1. -. u) *. (hi -. lo) *. (hi -. mode))

let mean = function
  | Normal { mean; _ } -> mean
  | Uniform { lo; hi } -> 0.5 *. (lo +. hi)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.))
  | Triangular { lo; mode; hi } -> (lo +. mode +. hi) /. 3.

let variance = function
  | Normal { sigma; _ } -> sigma *. sigma
  | Uniform { lo; hi } ->
      let w = hi -. lo in
      w *. w /. 12.
  | Lognormal { mu; sigma } ->
      let s2 = sigma *. sigma in
      (exp s2 -. 1.) *. exp ((2. *. mu) +. s2)
  | Triangular { lo; mode; hi } ->
      ((lo *. lo) +. (mode *. mode) +. (hi *. hi) -. (lo *. mode) -. (lo *. hi)
      -. (mode *. hi))
      /. 18.

let pdf d x =
  match d with
  | Normal { mean; sigma } ->
      let z = (x -. mean) /. sigma in
      exp (-0.5 *. z *. z) /. (sigma *. sqrt (2. *. Float.pi))
  | Uniform { lo; hi } -> if x < lo || x > hi then 0. else 1. /. (hi -. lo)
  | Lognormal { mu; sigma } ->
      if x <= 0. then 0.
      else
        let z = (log x -. mu) /. sigma in
        exp (-0.5 *. z *. z) /. (x *. sigma *. sqrt (2. *. Float.pi))
  | Triangular { lo; mode; hi } ->
      if x < lo || x > hi then 0.
      else if x < mode then 2. *. (x -. lo) /. ((hi -. lo) *. (mode -. lo))
      else if x = mode then 2. /. (hi -. lo)
      else 2. *. (hi -. x) /. ((hi -. lo) *. (hi -. mode))

let cdf d x =
  match d with
  | Normal { mean; sigma } -> normal_cdf ~mean ~sigma x
  | Uniform { lo; hi } ->
      if x <= lo then 0. else if x >= hi then 1. else (x -. lo) /. (hi -. lo)
  | Lognormal { mu; sigma } ->
      if x <= 0. then 0. else normal_cdf ~mean:mu ~sigma (log x)
  | Triangular { lo; mode; hi } ->
      if x <= lo then 0.
      else if x >= hi then 1.
      else if x <= mode then
        (x -. lo) *. (x -. lo) /. ((hi -. lo) *. (mode -. lo))
      else 1. -. ((hi -. x) *. (hi -. x) /. ((hi -. lo) *. (hi -. mode)))

let quantile d p =
  if p <= 0. || p >= 1. then invalid_arg "Dist.quantile: p outside (0,1)";
  match d with
  | Normal { mean; sigma } -> normal_quantile ~mean ~sigma p
  | Uniform { lo; hi } -> lo +. (p *. (hi -. lo))
  | Lognormal { mu; sigma } -> exp (normal_quantile ~mean:mu ~sigma p)
  | Triangular { lo; mode; hi } ->
      let fc = (mode -. lo) /. (hi -. lo) in
      if p < fc then lo +. sqrt (p *. (hi -. lo) *. (mode -. lo))
      else hi -. sqrt ((1. -. p) *. (hi -. lo) *. (hi -. mode))
