type t = {
  count : int;
  mean : float;
  m2 : float;
  min_v : float;
  max_v : float;
}

let empty = { count = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  let count = t.count + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int count) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  { count; mean; m2; min_v = Float.min t.min_v x; max_v = Float.max t.max_v x }

let of_array xs = Array.fold_left add empty xs

let count t = t.count

let mean t = if t.count = 0 then nan else t.mean

let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let min_value t = if t.count = 0 then nan else t.min_v

let max_value t = if t.count = 0 then nan else t.max_v

let std_error t =
  if t.count < 2 then nan else stddev t /. sqrt (float_of_int t.count)

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.quantile: empty sample";
  if p < 0. || p > 1. then invalid_arg "Summary.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = quantile xs 0.5

type histogram = { edges : float array; counts : int array }

let histogram ?(bins = 20) xs =
  if Array.length xs = 0 then invalid_arg "Summary.histogram: empty sample";
  if bins <= 0 then invalid_arg "Summary.histogram: bins must be positive";
  let lo = Array.fold_left Float.min infinity xs in
  let hi = Array.fold_left Float.max neg_infinity xs in
  (* widen degenerate ranges so every sample lands in a bin *)
  let lo, hi = if lo = hi then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
  let width = (hi -. lo) /. float_of_int bins in
  let edges = Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. width)) in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.max 0 (Stdlib.min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { edges; counts }

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.count
    (mean t) (stddev t) (min_value t) (max_value t)
