(** Probability distributions used by the process-variation models: sampling,
    densities, cumulative probabilities and quantiles. *)

type t =
  | Normal of { mean : float; sigma : float }
  | Uniform of { lo : float; hi : float }
  | Lognormal of { mu : float; sigma : float }
      (** log X ~ Normal(mu, sigma); positive-only parameters like tox. *)
  | Triangular of { lo : float; mode : float; hi : float }

val sample : t -> Rng.t -> float

val mean : t -> float

val variance : t -> float

val pdf : t -> float -> float

val cdf : t -> float -> float

val quantile : t -> float -> float
(** [quantile d p] for [p] in (0, 1).
    @raise Invalid_argument outside that range. *)

val erf : float -> float
(** Abramowitz–Stegun 7.1.26-style rational approximation, |error| < 1.5e-7;
    exposed for tests. *)

val normal_cdf : mean:float -> sigma:float -> float -> float

val normal_quantile : mean:float -> sigma:float -> float -> float
(** Acklam's inverse-normal approximation, refined with one Halley step. *)
