lib/stats/lhs.mli: Rng
