lib/stats/rng.mli:
