lib/stats/lhs.ml: Array Dist Float Fun Rng
