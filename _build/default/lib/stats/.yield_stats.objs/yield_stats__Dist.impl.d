lib/stats/dist.ml: Array Float Rng
