(** Descriptive statistics for Monte Carlo result streams. *)

type t
(** A running (Welford) accumulator; O(1) memory, numerically stable. *)

val empty : t

val add : t -> float -> t
(** Functional update; cheap record copy. *)

val of_array : float array -> t

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float

val max_value : t -> float

val std_error : t -> float
(** Standard error of the mean. *)

(** Order statistics and histograms need the retained sample. *)

val quantile : float array -> float -> float
(** [quantile xs p] is the p-quantile (linear interpolation between order
    statistics).  Does not modify [xs].
    @raise Invalid_argument on empty input or p outside [0, 1]. *)

val median : float array -> float

type histogram = { edges : float array; counts : int array }
(** [edges] has one more element than [counts]. *)

val histogram : ?bins:int -> float array -> histogram
(** Equal-width histogram over the data range (defaults to 20 bins).
    @raise Invalid_argument on empty input. *)

val pp : Format.formatter -> t -> unit
