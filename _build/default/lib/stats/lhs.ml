let sample rng ~n ~dims =
  if n <= 0 || dims <= 0 then invalid_arg "Lhs.sample: non-positive size";
  let columns =
    Array.init dims (fun _ ->
        let strata = Array.init n Fun.id in
        Rng.shuffle_in_place rng strata;
        Array.map
          (fun k -> (float_of_int k +. Rng.float rng) /. float_of_int n)
          strata)
  in
  Array.init n (fun i -> Array.init dims (fun j -> columns.(j).(i)))

let sample_normal rng ~n ~dims =
  let u = sample rng ~n ~dims in
  Array.map
    (Array.map (fun p ->
         (* keep strictly inside (0,1) for the quantile transform *)
         let p = Float.max 1e-12 (Float.min (1. -. 1e-12) p) in
         Dist.normal_quantile ~mean:0. ~sigma:1. p))
    u
