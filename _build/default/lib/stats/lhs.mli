(** Latin hypercube sampling: stratified multi-dimensional sampling that
    reduces Monte Carlo variance for smooth responses.  Each dimension's
    [0, 1) range is split into [n] equal strata; every stratum is hit exactly
    once, with independent random permutations per dimension. *)

val sample : Rng.t -> n:int -> dims:int -> float array array
(** [sample rng ~n ~dims] is an [n x dims] matrix of stratified uniforms.
    @raise Invalid_argument for non-positive [n] or [dims]. *)

val sample_normal : Rng.t -> n:int -> dims:int -> float array array
(** Stratified standard-normal deviates (inverse-CDF transform of
    {!sample}). *)
