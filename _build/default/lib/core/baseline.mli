(** The conventional simulation-based comparison point (paper §1, §4.4 and
    ref [5]): design-for-yield by putting the Monte Carlo analysis {e inside}
    the optimisation loop — every candidate pays for a statistical simulation,
    and nothing is reusable for the next specification. *)

type config = {
  conditions : Yield_circuits.Ota_testbench.conditions;
  variation : Yield_process.Variation.spec;
  spec : Yield_behavioural.Yield_target.spec;
  population : int;
  generations : int;
  inner_mc : int;  (** MC samples per candidate evaluation *)
  seed : int;
}

val default_config : Yield_behavioural.Yield_target.spec -> config
(** 30 x 30 GA with 20 inner MC samples. *)

type t = {
  best_params : Yield_circuits.Ota.params;
  best_yield : float;  (** inner-loop estimate for the best candidate *)
  nominal : Yield_circuits.Ota_testbench.perf option;
  sims : int;  (** total transistor-level simulations spent *)
  wall_s : float;
}

val run : ?log:(string -> unit) -> config -> t
(** @raise Failure when no candidate converges at all. *)

val sims_per_extra_spec : config -> int
(** Simulations the conventional approach must spend again for each new
    specification (the whole budget), versus 0 table lookups for the proposed
    model — the hierarchical-reuse argument of the paper. *)
