module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Ga = Yield_ga.Ga
module Genome = Yield_ga.Genome
module Rng = Yield_stats.Rng
module Montecarlo = Yield_process.Montecarlo
module Yield_target = Yield_behavioural.Yield_target

type config = {
  conditions : Tb.conditions;
  variation : Yield_process.Variation.spec;
  spec : Yield_target.spec;
  population : int;
  generations : int;
  inner_mc : int;
  seed : int;
}

let default_config spec =
  {
    conditions = Tb.default_conditions;
    variation = Yield_process.Variation.default_spec;
    spec;
    population = 30;
    generations = 30;
    inner_mc = 20;
    seed = 404;
  }

type t = {
  best_params : Ota.params;
  best_yield : float;
  nominal : Tb.perf option;
  sims : int;
  wall_s : float;
}

let nop _ = ()

(* Fitness of a candidate: its estimated yield for the spec, tie-broken by
   the nominal worst-margin so the GA can climb before any sample passes. *)
let fitness config ~sims rng params =
  match Tb.evaluate ~conditions:config.conditions params with
  | None ->
      incr sims;
      (neg_infinity, 0.)
  | Some nominal ->
      incr sims;
      let results =
        Montecarlo.run ~samples:config.inner_mc ~rng (fun sample_rng ->
            incr sims;
            Tb.evaluate_sampled ~conditions:config.conditions
              ~spec:config.variation ~rng:sample_rng params)
      in
      let pass =
        Array.fold_left
          (fun acc r ->
            if
              Yield_target.meets config.spec ~gain_db:r.Tb.gain_db
                ~pm_deg:r.Tb.phase_margin_deg
            then acc + 1
            else acc)
          0 results
      in
      let yield_est =
        if Array.length results = 0 then 0.
        else float_of_int pass /. float_of_int (Array.length results)
      in
      let margin =
        Float.min
          (nominal.Tb.gain_db -. config.spec.Yield_target.min_gain_db)
          (nominal.Tb.phase_margin_deg -. config.spec.Yield_target.min_pm_deg)
      in
      (* margin is squashed into (0, 1e-3) so yield dominates; the /5
         softening keeps a usable gradient far from the spec *)
      let tie = 1e-3 /. (1. +. exp (-.margin /. 5.)) in
      (yield_est +. tie, yield_est)

let run ?(log = nop) config =
  let t0 = Unix.gettimeofday () in
  let sims = ref 0 in
  let rng = Rng.create config.seed in
  let encoding = Genome.encoding Ota.param_ranges ~n_weights:0 in
  let score population =
    Array.map
      (fun genome ->
        let params = Ota.params_of_array (Genome.params encoding genome) in
        let fitness_value, yield_est = fitness config ~sims rng params in
        ((params, yield_est), fitness_value))
      population
  in
  let ga_config =
    {
      Ga.default_config with
      Ga.population_size = config.population;
      generations = config.generations;
    }
  in
  log
    (Printf.sprintf "baseline: MC-in-the-loop GA %d x %d x %d samples"
       config.population config.generations config.inner_mc);
  let result = Ga.run ga_config encoding (Rng.split rng) ~score in
  let best_params, best_yield = result.Ga.best.Ga.payload in
  if result.Ga.best.Ga.fitness = neg_infinity then
    failwith "Baseline.run: no candidate converged";
  {
    best_params;
    best_yield;
    nominal = Tb.evaluate ~conditions:config.conditions best_params;
    sims = !sims;
    wall_s = Unix.gettimeofday () -. t0;
  }

let sims_per_extra_spec config =
  config.population * config.generations * (1 + config.inner_mc)
