module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Filter = Yield_circuits.Filter
module Wbga = Yield_ga.Wbga
module Rng = Yield_stats.Rng
module Summary = Yield_stats.Summary
module Measure = Yield_spice.Measure
module Ac = Yield_spice.Ac
module Montecarlo = Yield_process.Montecarlo
module Variation = Yield_process.Variation
module Perf_model = Yield_behavioural.Perf_model
module Var_model = Yield_behavioural.Var_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target

type context = {
  config : Config.t;
  flow : Flow.t;
  spec : Yield_target.spec;
}

(* Pick the Table 3 spec from the front itself: a gain at 60 % of the span
   and the PM the front offers just above that gain, each backed off so the
   inflated targets stay inside the tables.  The PM reference point is the
   nearest front sample (not a spline evaluation): cubic splines ring through
   the steep tail of a Pareto front. *)
let spec_for_flow (flow : Flow.t) =
  let points = Perf_model.points flow.Flow.perf_model in
  let lo, hi = Perf_model.gain_range flow.Flow.perf_model in
  (* both models must cover the spec: intersect the front's gain span with
     the variation table's domain (the strided MC step may cover less) *)
  let vlo, vhi = Var_model.gain_domain flow.Flow.var_model in
  let lo = Float.max lo vlo and hi = Float.min hi vhi in
  let gain = Float.round (lo +. (0.6 *. (hi -. lo))) in
  let gain = Float.max lo (Float.min hi gain) in
  let dgain =
    try Var_model.dgain_at flow.Flow.var_model ~gain_db:gain with _ -> 1.
  in
  let inflated = gain *. (1. +. (dgain /. 100.)) in
  let nearest =
    Array.fold_left
      (fun best (p : Perf_model.point) ->
        if
          Float.abs (p.Perf_model.gain_db -. inflated)
          < Float.abs (best.Perf_model.gain_db -. inflated)
        then p
        else best)
      points.(0) points
  in
  let plo, phi = Var_model.pm_domain flow.Flow.var_model in
  let pm = Float.round (nearest.Perf_model.pm_deg -. 3.) in
  let pm = Float.max plo (Float.min phi pm) in
  { Yield_target.min_gain_db = gain; min_pm_deg = pm }

let make_context ?log config =
  let flow = Flow.run ?log config in
  { config; flow; spec = spec_for_flow flow }

let scale_banner ctx what =
  Printf.sprintf "[%s, %s]\n" what (Config.scale_name ctx.config)

(* ---------- Figure 7 ---------- *)

let fig7 ctx =
  let buf = Buffer.create 4096 in
  let archive = ctx.flow.Flow.wbga.Wbga.archive in
  let front = ctx.flow.Flow.wbga.Wbga.front in
  Buffer.add_string buf (Report.section "Figure 7: gain and phase margin for individuals");
  Buffer.add_string buf (scale_banner ctx "WBGA evaluation cloud + Pareto front");
  let gains = Array.map (fun (e : Wbga.entry) -> e.Wbga.objectives.(0)) archive in
  let pms = Array.map (fun (e : Wbga.entry) -> e.Wbga.objectives.(1)) archive in
  let gs = Summary.of_array gains and ps = Summary.of_array pms in
  Buffer.add_string buf
    (Printf.sprintf
       "individuals: %d evaluated (%d infeasible not shown), front: %d points\n"
       (ctx.flow.Flow.wbga.Wbga.evaluations)
       ctx.flow.Flow.wbga.Wbga.failures (Array.length front));
  Buffer.add_string buf
    (Printf.sprintf "cloud gain: min %.2f / mean %.2f / max %.2f dB\n"
       (Summary.min_value gs) (Summary.mean gs) (Summary.max_value gs));
  Buffer.add_string buf
    (Printf.sprintf "cloud PM:   min %.2f / mean %.2f / max %.2f deg\n"
       (Summary.min_value ps) (Summary.mean ps) (Summary.max_value ps));
  let n = Array.length front in
  let step = Stdlib.max 1 (n / 30) in
  let rows = ref [] in
  Array.iteri
    (fun i (e : Wbga.entry) ->
      if i mod step = 0 || i = n - 1 then
        rows :=
          [
            string_of_int (i + 1);
            Report.float_cell e.Wbga.objectives.(0);
            Report.float_cell e.Wbga.objectives.(1);
          ]
          :: !rows)
    front;
  Buffer.add_string buf "\nPareto front series (subsampled):\n";
  Buffer.add_string buf
    (Report.table ~header:[ "#"; "Gain (dB)"; "PM (deg)" ] (List.rev !rows));
  Buffer.contents buf

(* ---------- Table 2 ---------- *)

(* Ten designs spread evenly across the central part of the front's *gain
   span* (not its index range: a converged GA piles hundreds of front points
   onto the max-gain corner), mirroring the paper's designs 21..38 around
   its 50 dB spec region. *)
let table2_points ctx =
  let pts = Array.copy ctx.flow.Flow.var_points in
  Array.sort
    (fun (a : Var_model.point) b -> Float.compare a.Var_model.gain_db b.Var_model.gain_db)
    pts;
  let n = Array.length pts in
  let g_lo = pts.(0).Var_model.gain_db and g_hi = pts.(n - 1).Var_model.gain_db in
  let lo = g_lo +. (0.30 *. (g_hi -. g_lo)) in
  let hi = g_lo +. (0.92 *. (g_hi -. g_lo)) in
  let count = Stdlib.min 10 n in
  let used = Hashtbl.create 16 in
  let nearest target =
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun i (p : Var_model.point) ->
        let d = Float.abs (p.Var_model.gain_db -. target) in
        if d < !best_d && not (Hashtbl.mem used i) then begin
          best := i;
          best_d := d
        end)
      pts;
    Hashtbl.replace used !best ();
    !best
  in
  let picks =
    Array.init count (fun k ->
        let target =
          if count = 1 then lo
          else lo +. (float_of_int k /. float_of_int (count - 1) *. (hi -. lo))
        in
        nearest target)
  in
  Array.sort compare picks;
  Array.map (fun i -> (i, pts.(i))) picks

let table2 ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Report.section "Table 2: performance and variation values");
  Buffer.add_string buf (scale_banner ctx "per-Pareto-point Monte Carlo spreads");
  let rows =
    Array.to_list
      (Array.map
         (fun (i, (p : Var_model.point)) ->
           [
             string_of_int i;
             Report.float_cell p.Var_model.gain_db;
             Report.float_cell p.Var_model.dgain_pct;
             Report.float_cell p.Var_model.pm_deg;
             Report.float_cell p.Var_model.dpm_pct;
           ])
         (table2_points ctx))
  in
  Buffer.add_string buf
    (Report.table
       ~header:[ "Design"; "Gain (dB)"; "dGain (%)"; "PM (deg)"; "dPM (%)" ]
       rows);
  Buffer.contents buf

(* ---------- Table 3 ---------- *)

let table3 ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Report.section "Table 3: yield-targeting interpolation example");
  (match Flow.design_for_spec ctx.flow ctx.spec with
  | Error e -> Buffer.add_string buf ("ERROR: " ^ e ^ "\n")
  | Ok plan ->
      let p = plan.Yield_target.proposal in
      Buffer.add_string buf
        (Report.table
           ~header:
             [ "Performance"; "Required"; "Variation"; "New Performance" ]
           [
             [
               "Gain";
               Printf.sprintf "> %.0f dB" ctx.spec.Yield_target.min_gain_db;
               Printf.sprintf "%.2f %%" p.Macromodel.gain_delta_pct;
               Printf.sprintf "%.2f dB" p.Macromodel.proposed_gain_db;
             ];
             [
               "Phase Margin";
               Printf.sprintf "> %.0f deg" ctx.spec.Yield_target.min_pm_deg;
               Printf.sprintf "%.2f %%" p.Macromodel.pm_delta_pct;
               Printf.sprintf "%.2f deg" p.Macromodel.proposed_pm_deg;
             ];
           ]);
      Buffer.add_string buf
        (Printf.sprintf
           "worst-case after variation: gain %.2f dB, PM %.2f deg (spec: %.0f / %.0f)\n"
           plan.Yield_target.worst_case_gain_db plan.Yield_target.worst_case_pm_deg
           ctx.spec.Yield_target.min_gain_db ctx.spec.Yield_target.min_pm_deg);
      Buffer.add_string buf
        (Printf.sprintf "predicted yield: %.2f %%\n"
           (100. *. Yield_target.predicted_yield plan)));
  Buffer.contents buf

(* ---------- Table 4 ---------- *)

let table4 ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Report.section "Table 4: performance comparison");
  (match Flow.design_for_spec ctx.flow ctx.spec with
  | Error e -> Buffer.add_string buf ("ERROR: " ^ e ^ "\n")
  | Ok plan ->
      let design = plan.Yield_target.proposal.Macromodel.design in
      let params = Ota.params_of_array design.Perf_model.params in
      (match Tb.evaluate ~conditions:ctx.config.Config.conditions params with
      | None -> Buffer.add_string buf "ERROR: transistor simulation failed\n"
      | Some perf ->
          let err a b = 100. *. Float.abs (a -. b) /. Float.abs a in
          Buffer.add_string buf
            (Report.table
               ~header:
                 [
                   "Performance Function";
                   "Transistor Model";
                   "Behavioural Model";
                   "% error";
                 ]
               [
                 [
                   "Gain (dB)";
                   Report.float_cell perf.Tb.gain_db;
                   Report.float_cell design.Perf_model.gain_db;
                   Report.float_cell (err perf.Tb.gain_db design.Perf_model.gain_db);
                 ];
                 [
                   "Phase Margin (deg)";
                   Report.float_cell perf.Tb.phase_margin_deg;
                   Report.float_cell design.Perf_model.pm_deg;
                   Report.float_cell
                     (err perf.Tb.phase_margin_deg design.Perf_model.pm_deg);
                 ];
               ]);
          (* the same comparison with the family guard disabled: the paper's
             raw two-input $table_model interpolation *)
          let p = plan.Yield_target.proposal in
          let raw =
            Perf_model.lookup ~guard:false ctx.flow.Flow.perf_model
              ~gain_db:p.Macromodel.proposed_gain_db
              ~pm_deg:p.Macromodel.proposed_pm_deg
          in
          let raw_params = Ota.params_of_array raw.Perf_model.params in
          (match
             Tb.evaluate ~conditions:ctx.config.Config.conditions raw_params
           with
          | None ->
              Buffer.add_string buf
                "raw interpolation: transistor simulation failed\n"
          | Some rperf ->
              Buffer.add_string buf
                "\nraw (unguarded) table interpolation, as in the paper:\n";
              Buffer.add_string buf
                (Report.table
                   ~header:
                     [
                       "Performance Function";
                       "Transistor Model";
                       "Behavioural Model";
                       "% error";
                     ]
                   [
                     [
                       "Gain (dB)";
                       Report.float_cell rperf.Tb.gain_db;
                       Report.float_cell raw.Perf_model.gain_db;
                       Report.float_cell
                         (err rperf.Tb.gain_db raw.Perf_model.gain_db);
                     ];
                     [
                       "Phase Margin (deg)";
                       Report.float_cell rperf.Tb.phase_margin_deg;
                       Report.float_cell raw.Perf_model.pm_deg;
                       Report.float_cell
                         (err rperf.Tb.phase_margin_deg raw.Perf_model.pm_deg);
                     ];
                   ]))));
  Buffer.contents buf

(* ---------- Table 5 ---------- *)

let table5 ?(run_baseline = true) ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Report.section "Table 5: design parameter summary");
  let counts = ctx.flow.Flow.counts in
  let timings = ctx.flow.Flow.timings in
  Buffer.add_string buf
    (Report.table ~header:[ "Parameter"; "Value" ]
       [
         [
           "No. generations";
           string_of_int ctx.config.Config.ga.Yield_ga.Ga.generations;
         ];
         [ "Evaluation samples"; string_of_int counts.Flow.optimisation_sims ];
         [
           "Pareto points";
           string_of_int (Array.length ctx.flow.Flow.front_points);
         ];
         [ "MC samples per point"; string_of_int ctx.config.Config.mc_samples ];
         [ "Variation-model simulations"; string_of_int counts.Flow.mc_sims ];
         [ "Total simulations"; string_of_int (Flow.total_sims counts) ];
         [
           "CPU time, optimisation stage";
           Printf.sprintf "%.1f s" timings.Flow.optimisation_s;
         ];
         [ "CPU time, MC stage"; Printf.sprintf "%.1f s" timings.Flow.mc_s ];
         [ "CPU time, total"; Printf.sprintf "%.1f s" timings.Flow.total_s ];
       ]);
  if run_baseline then begin
    let baseline_config =
      let d = Baseline.default_config ctx.spec in
      { d with Baseline.conditions = ctx.config.Config.conditions;
               variation = ctx.config.Config.variation }
    in
    let b = Baseline.run baseline_config in
    Buffer.add_string buf
      "\nConventional comparison (MC-in-the-loop yield optimisation, ref [5]):\n";
    Buffer.add_string buf
      (Report.table ~header:[ "Approach"; "Sims (1st spec)"; "Sims (each new spec)"; "Wall (s)" ]
         [
           [
             "proposed (model + lookup)";
             string_of_int (Flow.total_sims counts);
             "0 (table lookup)";
             Printf.sprintf "%.1f" timings.Flow.total_s;
           ];
           [
             "conventional (MC in loop)";
             string_of_int b.Baseline.sims;
             string_of_int (Baseline.sims_per_extra_spec baseline_config);
             Printf.sprintf "%.1f" b.Baseline.wall_s;
           ];
         ]);
    let per_spec = Baseline.sims_per_extra_spec baseline_config in
    let proposed_total = Flow.total_sims counts in
    let break_even =
      int_of_float
        (Float.ceil (float_of_int proposed_total /. float_of_int per_spec))
    in
    Buffer.add_string buf
      (Printf.sprintf
         "hierarchical reuse: the proposed model answers every further \
          specification\nby table lookup; the conventional approach re-spends \
          %d simulations per\nspecification, so the model investment amortises \
          after %d specification(s).\n"
         per_spec break_even);
    Buffer.add_string buf
      (Printf.sprintf
         "baseline best candidate: yield estimate %.0f %%, nominal gain %s dB, PM %s deg\n"
         (100. *. b.Baseline.best_yield)
         (match b.Baseline.nominal with
         | Some p -> Report.float_cell p.Tb.gain_db
         | None -> "n/a")
         (match b.Baseline.nominal with
         | Some p -> Report.float_cell p.Tb.phase_margin_deg
         | None -> "n/a"))
  end;
  Buffer.contents buf

(* ---------- Figure 8 ---------- *)

let fig8 ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Report.section "Figure 8: open-loop gain comparison");
  (match Flow.design_for_spec ctx.flow ctx.spec with
  | Error e -> Buffer.add_string buf ("ERROR: " ^ e ^ "\n")
  | Ok plan ->
      let design = plan.Yield_target.proposal.Macromodel.design in
      let params = Ota.params_of_array design.Perf_model.params in
      let conditions = ctx.config.Config.conditions in
      (match Tb.bode ~conditions params with
      | None -> Buffer.add_string buf "ERROR: transistor simulation failed\n"
      | Some transistor ->
          let model =
            Macromodel.bode ~f_lo:conditions.Tb.f_lo ~f_hi:conditions.Tb.f_hi
              ~per_decade:conditions.Tb.points_per_decade
              ~gain_db:design.Perf_model.gain_db ~rout:design.Perf_model.rout
              ~load_cap:conditions.Tb.load_cap ()
          in
          let t_mag = Measure.magnitudes_db transistor in
          let m_mag = Measure.magnitudes_db model in
          let divergence = ref None in
          Array.iteri
            (fun i f ->
              if !divergence = None && Float.abs (t_mag.(i) -. m_mag.(i)) > 1.
              then divergence := Some f)
            transistor.Ac.freqs;
          let rows = ref [] in
          let n = Array.length transistor.Ac.freqs in
          let step = Stdlib.max 1 (n / 20) in
          Array.iteri
            (fun i f ->
              if i mod step = 0 || i = n - 1 then
                rows :=
                  [
                    Report.si f ^ "Hz";
                    Report.float_cell t_mag.(i);
                    Report.float_cell m_mag.(i);
                  ]
                  :: !rows)
            transistor.Ac.freqs;
          Buffer.add_string buf
            (Report.table
               ~header:[ "Frequency"; "Transistor (dB)"; "Verilog-A model (dB)" ]
               (List.rev !rows));
          Buffer.add_string buf
            (match !divergence with
            | Some f ->
                Printf.sprintf
                  "divergence (>1 dB, parasitic poles not modelled) above %sHz\n"
                  (Report.si f)
            | None -> "model and transistor agree within 1 dB everywhere\n")));
  Buffer.contents buf

(* ---------- Figure 10 ---------- *)

let fig10 _ctx =
  let buf = Buffer.create 512 in
  let s = Filter.default_spec in
  Buffer.add_string buf (Report.section "Figure 10: filter specification");
  Buffer.add_string buf
    (Report.table ~header:[ "Region"; "Band"; "Requirement" ]
       [
         [
           "passband";
           Printf.sprintf "DC - %sHz" (Report.si s.Filter.f_pass);
           Printf.sprintf "gain within +-%.1f dB of DC" s.Filter.ripple_db;
         ];
         [
           "stopband";
           Printf.sprintf ">= %sHz" (Report.si s.Filter.f_stop);
           Printf.sprintf "attenuation >= %.0f dB" s.Filter.atten_db;
         ];
       ]);
  Buffer.contents buf

(* ---------- Figure 11 ---------- *)

let fig11 ctx =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Report.section "Figure 11 (and §5): filter design from the behavioural model");
  (match Flow.design_for_spec ctx.flow ctx.spec with
  | Error e -> Buffer.add_string buf ("ERROR: " ^ e ^ "\n")
  | Ok plan ->
      let design = plan.Yield_target.proposal.Macromodel.design in
      let amp = Macromodel.amp_of_design design in
      Buffer.add_string buf
        (Printf.sprintf
           "OTA selected from model: gain %.2f dB, PM %.2f deg, rout %sOhm\n"
           design.Perf_model.gain_db design.Perf_model.pm_deg
           (Report.si design.Perf_model.rout));
      let spec = Filter.default_spec in
      (* design against a guard-banded mask — the same inflate-the-target
         idea as the §4.4 yield targeting: the guard absorbs the behavioural
         model's residual error and the process spread, so the verified
         transistor-level filter still clears the true mask *)
      let design_spec =
        {
          spec with
          Filter.ripple_db = spec.Filter.ripple_db -. 0.2;
          atten_db = spec.Filter.atten_db +. 3.;
        }
      in
      let opt = Filter.optimise amp design_spec (Rng.create 11) in
      let caps = opt.Filter.best in
      Buffer.add_string buf
        (Printf.sprintf
           "filter MOO (30 individuals x 40 generations, %d evaluations):\n\
            C1 = %sF, C2 = %sF, C3 = %sF\n"
           opt.Filter.evaluations (Report.si caps.Filter.c1)
           (Report.si caps.Filter.c2) (Report.si caps.Filter.c3));
      Buffer.add_string buf
        (Printf.sprintf
           "behavioural-model margins: passband %.2f dB, stopband %.2f dB (meets spec: %b)\n"
           opt.Filter.best_check.Filter.passband_margin_db
           opt.Filter.best_check.Filter.stopband_margin_db
           opt.Filter.best_check.Filter.meets_spec);
      (* transistor-level verification *)
      let params = Ota.params_of_array design.Perf_model.params in
      (match Filter.response_transistor params caps with
      | None -> Buffer.add_string buf "ERROR: transistor filter failed to bias\n"
      | Some bode ->
          let c = Filter.check spec bode in
          Buffer.add_string buf
            (Printf.sprintf
               "transistor-level margins:   passband %.2f dB, stopband %.2f dB (meets spec: %b)\n"
               c.Filter.passband_margin_db c.Filter.stopband_margin_db
               c.Filter.meets_spec);
          let mags = Measure.magnitudes_db bode in
          let rows = ref [] in
          let n = Array.length bode.Ac.freqs in
          let step = Stdlib.max 1 (n / 16) in
          Array.iteri
            (fun i f ->
              if i mod step = 0 || i = n - 1 then
                rows := [ Report.si f ^ "Hz"; Report.float_cell mags.(i) ] :: !rows)
            bode.Ac.freqs;
          Buffer.add_string buf "\ntypical-mean transistor filter response:\n";
          Buffer.add_string buf
            (Report.table ~header:[ "Frequency"; "Gain (dB)" ] (List.rev !rows));
          (* Monte Carlo yield of the closed filter *)
          let mc_samples = if Config.scale_name ctx.config = "paper-scale" then 500 else 60 in
          let circuit, out = Filter.build_transistor params caps in
          let rng = Rng.create 99 in
          let results =
            Montecarlo.run ~samples:mc_samples ~rng (fun sample_rng ->
                let perturbed =
                  Variation.perturb_circuit ctx.config.Config.variation
                    sample_rng circuit
                in
                match Filter.response_of_circuit perturbed ~out with
                | None -> None
                | Some b -> Some (Filter.check spec b))
          in
          let yield_est =
            Montecarlo.yield_of (fun c -> c.Filter.meets_spec) results
          in
          Buffer.add_string buf
            (Printf.sprintf
               "\nMonte Carlo verification (%d samples): yield %.1f %% (95%% CI %.1f-%.1f)\n"
               (Array.length results)
               (100. *. yield_est.Montecarlo.yield)
               (100. *. yield_est.Montecarlo.ci_low)
               (100. *. yield_est.Montecarlo.ci_high))));
  Buffer.contents buf

let all =
  [
    ("fig7", fig7);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", fun ctx -> table5 ctx);
    ("fig8", fig8);
    ("fig10", fig10);
    ("fig11", fig11);
  ]
