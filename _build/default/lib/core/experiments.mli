(** One entry point per table/figure of the paper's evaluation (§4-§5).
    Each experiment renders the series/rows the paper reports; the shared
    [context] carries the (expensive) flow result so the model is built
    once. *)

type context = {
  config : Config.t;
  flow : Flow.t;
  spec : Yield_behavioural.Yield_target.spec;
      (** the specification used for Tables 3/4 and the filter application;
          chosen inside the model's range (the paper uses >50 dB, >74 deg on
          its front — see EXPERIMENTS.md for the mapping) *)
}

val make_context : ?log:(string -> unit) -> Config.t -> context

val spec_for_flow : Flow.t -> Yield_behavioural.Yield_target.spec
(** The Table 3 specification derived from a flow's front: a gain at 60 % of
    the front's span (rounded), with a PM requirement 2 degrees under the
    front curve at the inflated gain. *)

val fig7 : context -> string
(** Gain/PM cloud of all evaluated individuals + the Pareto front series. *)

val table2 : context -> string
(** Performance and variation values of selected Pareto designs. *)

val table3 : context -> string
(** The yield-targeting interpolation example. *)

val table4 : context -> string
(** Transistor model vs behavioural model, % error. *)

val table5 : ?run_baseline:bool -> context -> string
(** Design-parameter summary: simulation counts, CPU time, and the
    conventional MC-in-the-loop baseline comparison ([run_baseline]
    defaults to true). *)

val fig8 : context -> string
(** Open-loop gain comparison: transistor vs behavioural model across
    frequency, with the divergence point. *)

val fig10 : context -> string
(** The anti-aliasing filter specification mask. *)

val fig11 : context -> string
(** Filter design via the behavioural model, transistor-level verification
    and 500-sample Monte Carlo yield. *)

val all : (string * (context -> string)) list
(** Experiments in paper order, keyed by their identifier ("fig7", ...). *)
