(** Plain-text table rendering for the experiment harness. *)

val table : header:string list -> string list list -> string
(** Aligned columns, a rule under the header.  Rows shorter than the header
    are padded with empty cells. *)

val float_cell : ?decimals:int -> float -> string

val si : float -> string
(** Engineering notation with an SI prefix: [si 3.3e-12 = "3.3p"]. *)

val section : string -> string
(** A titled rule used to separate experiment outputs. *)
