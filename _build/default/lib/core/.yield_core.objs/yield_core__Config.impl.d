lib/core/config.ml: Sys Yield_circuits Yield_ga Yield_process
