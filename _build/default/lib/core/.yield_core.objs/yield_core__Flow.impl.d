lib/core/flow.ml: Array Atomic Config Filename List Printf Stdlib Unix Yield_behavioural Yield_circuits Yield_ga Yield_process Yield_stats Yield_table
