lib/core/config.mli: Yield_circuits Yield_ga Yield_process
