lib/core/experiments.mli: Config Flow Yield_behavioural
