lib/core/report.ml: Array Float List Printf Stdlib String
