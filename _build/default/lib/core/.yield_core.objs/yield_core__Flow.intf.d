lib/core/flow.mli: Config Yield_behavioural Yield_circuits Yield_ga Yield_process
