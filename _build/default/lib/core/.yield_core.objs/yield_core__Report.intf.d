lib/core/report.mli:
