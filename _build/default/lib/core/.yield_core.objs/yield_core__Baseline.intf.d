lib/core/baseline.mli: Yield_behavioural Yield_circuits Yield_process
