lib/core/experiments.ml: Array Baseline Buffer Config Float Flow Hashtbl List Printf Report Stdlib Yield_behavioural Yield_circuits Yield_ga Yield_process Yield_spice Yield_stats
