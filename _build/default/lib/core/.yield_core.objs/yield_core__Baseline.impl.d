lib/core/baseline.ml: Array Float Printf Unix Yield_behavioural Yield_circuits Yield_ga Yield_process Yield_stats
