let table ~header rows =
  let ncols = List.length header in
  let pad row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        row)
    (header :: rows);
  let render row =
    String.concat "  "
      (List.mapi
         (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell)
         row)
  in
  let rule =
    String.concat "  "
      (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" ((render header :: rule :: List.map render rows) @ [ "" ])

let float_cell ?(decimals = 2) v =
  if Float.is_nan v then "n/a" else Printf.sprintf "%.*f" decimals v

let si v =
  if v = 0. then "0"
  else begin
    let abs = Float.abs v in
    let scaled, prefix =
      if abs >= 1e9 then (v /. 1e9, "G")
      else if abs >= 1e6 then (v /. 1e6, "M")
      else if abs >= 1e3 then (v /. 1e3, "k")
      else if abs >= 1. then (v, "")
      else if abs >= 1e-3 then (v /. 1e-3, "m")
      else if abs >= 1e-6 then (v /. 1e-6, "u")
      else if abs >= 1e-9 then (v /. 1e-9, "n")
      else if abs >= 1e-12 then (v /. 1e-12, "p")
      else (v /. 1e-15, "f")
    in
    Printf.sprintf "%.3g%s" scaled prefix
  end

let section title =
  let width = 72 in
  let dashes = Stdlib.max 0 (width - String.length title - 6) in
  Printf.sprintf "\n==== %s %s\n" title (String.make dashes '=')
