module Rng = Yield_stats.Rng

type selection = Tournament of int | Roulette

type crossover = One_point | Uniform of float | Blend of float | Sbx of float

type mutation =
  | Gaussian of { sigma : float; rate : float }
  | Uniform_reset of { rate : float }
  | Polynomial of { eta : float; rate : float }

let select sel rng ~fitness =
  let n = Array.length fitness in
  if n = 0 then invalid_arg "Operators.select: empty population";
  match sel with
  | Tournament k ->
      let k = Stdlib.max 1 k in
      let best = ref (Rng.int rng n) in
      for _ = 2 to k do
        let c = Rng.int rng n in
        if fitness.(c) > fitness.(!best) then best := c
      done;
      !best
  | Roulette ->
      let lo = Array.fold_left Float.min infinity fitness in
      let shifted = Array.map (fun f -> f -. lo +. 1e-12) fitness in
      let total = Array.fold_left ( +. ) 0. shifted in
      let target = Rng.float rng *. total in
      let rec walk i acc =
        if i >= n - 1 then n - 1
        else begin
          let acc = acc +. shifted.(i) in
          if acc >= target then i else walk (i + 1) acc
        end
      in
      walk 0 0.

let cross op rng a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Operators.cross: length mismatch";
  let c1 = Array.copy a and c2 = Array.copy b in
  (match op with
  | One_point ->
      if n > 1 then begin
        let point = 1 + Rng.int rng (n - 1) in
        for i = point to n - 1 do
          c1.(i) <- b.(i);
          c2.(i) <- a.(i)
        done
      end
  | Uniform p ->
      for i = 0 to n - 1 do
        if Rng.float rng < p then begin
          c1.(i) <- b.(i);
          c2.(i) <- a.(i)
        end
      done
  | Blend alpha ->
      for i = 0 to n - 1 do
        let lo = Float.min a.(i) b.(i) and hi = Float.max a.(i) b.(i) in
        let d = hi -. lo in
        let lo' = lo -. (alpha *. d) and hi' = hi +. (alpha *. d) in
        c1.(i) <- Rng.uniform rng lo' hi';
        c2.(i) <- Rng.uniform rng lo' hi'
      done
  | Sbx eta ->
      for i = 0 to n - 1 do
        if Rng.float rng < 0.5 then begin
          let u = Rng.float rng in
          let beta =
            if u <= 0.5 then (2. *. u) ** (1. /. (eta +. 1.))
            else (1. /. (2. *. (1. -. u))) ** (1. /. (eta +. 1.))
          in
          let x1 = a.(i) and x2 = b.(i) in
          c1.(i) <- 0.5 *. (((1. +. beta) *. x1) +. ((1. -. beta) *. x2));
          c2.(i) <- 0.5 *. (((1. -. beta) *. x1) +. ((1. +. beta) *. x2))
        end
      done);
  Genome.clamp c1;
  Genome.clamp c2;
  (c1, c2)

let mutate op rng g =
  let n = Array.length g in
  (match op with
  | Gaussian { sigma; rate } ->
      for i = 0 to n - 1 do
        if Rng.float rng < rate then
          g.(i) <- g.(i) +. Rng.normal rng ~mean:0. ~sigma
      done
  | Uniform_reset { rate } ->
      for i = 0 to n - 1 do
        if Rng.float rng < rate then g.(i) <- Rng.float rng
      done
  | Polynomial { eta; rate } ->
      for i = 0 to n - 1 do
        if Rng.float rng < rate then begin
          let u = Rng.float rng in
          let delta =
            if u < 0.5 then ((2. *. u) ** (1. /. (eta +. 1.))) -. 1.
            else 1. -. ((2. *. (1. -. u)) ** (1. /. (eta +. 1.)))
          in
          g.(i) <- g.(i) +. delta
        end
      done);
  Genome.clamp g
