(** NSGA-II (Deb et al.): a reference multi-objective optimiser.

    The paper's reference [8] is Deb's book; NSGA-II is the canonical
    algorithm from it.  It is included as a baseline to compare the WBGA's
    front quality against (ablation benches), not as part of the paper's
    proposed flow. *)

type config = {
  population_size : int;
  generations : int;
  crossover_eta : float;
  mutation_eta : float;
  mutation_rate : float;  (** per gene *)
}

val default_config : config

type entry = { params : float array; objectives : float array }

type result = {
  front : entry array;  (** final non-dominated set, sorted by objective 0 *)
  archive : entry array;  (** every successful evaluation *)
  evaluations : int;
  failures : int;
}

val run :
  ?config:config ->
  param_ranges:Genome.range array ->
  maximise:bool array ->
  rng:Yield_stats.Rng.t ->
  evaluate:(float array -> float array option) ->
  unit ->
  result
