module Rng = Yield_stats.Rng

type scale = Linear | Log

type range = { name : string; lo : float; hi : float; scale : scale }

let range name ~lo ~hi =
  if not (lo < hi) then invalid_arg ("Genome.range: empty range for " ^ name);
  { name; lo; hi; scale = Linear }

let log_range name ~lo ~hi =
  if not (0. < lo && lo < hi) then
    invalid_arg ("Genome.log_range: need 0 < lo < hi for " ^ name);
  { name; lo; hi; scale = Log }

type encoding = { param_ranges : range array; n_weights : int }

let encoding param_ranges ~n_weights =
  if Array.length param_ranges = 0 then
    invalid_arg "Genome.encoding: no parameters";
  if n_weights < 0 then invalid_arg "Genome.encoding: negative weight count";
  { param_ranges; n_weights }

let length e = Array.length e.param_ranges + e.n_weights

type t = float array

let random e rng = Array.init (length e) (fun _ -> Rng.float rng)

let clamp g =
  for i = 0 to Array.length g - 1 do
    g.(i) <- Float.max 0. (Float.min 1. g.(i))
  done

let decode r gene =
  match r.scale with
  | Linear -> r.lo +. (gene *. (r.hi -. r.lo))
  | Log -> exp (log r.lo +. (gene *. (log r.hi -. log r.lo)))

let encode r value =
  let unit =
    match r.scale with
    | Linear -> (value -. r.lo) /. (r.hi -. r.lo)
    | Log -> (log value -. log r.lo) /. (log r.hi -. log r.lo)
  in
  Float.max 0. (Float.min 1. unit)

let params e g = Array.mapi (fun i r -> decode r g.(i)) e.param_ranges

let weights e g =
  let np = Array.length e.param_ranges in
  let raw = Array.sub g np e.n_weights in
  let total = Array.fold_left ( +. ) 0. raw in
  if total <= 0. then Array.make e.n_weights (1. /. float_of_int e.n_weights)
  else Array.map (fun w -> w /. total) raw

let of_params e ~params ~weights =
  let np = Array.length e.param_ranges in
  if Array.length params <> np then
    invalid_arg "Genome.of_params: parameter count mismatch";
  if Array.length weights <> e.n_weights then
    invalid_arg "Genome.of_params: weight count mismatch";
  let g = Array.make (length e) 0. in
  Array.iteri (fun i r -> g.(i) <- encode r params.(i)) e.param_ranges;
  let wmax = Array.fold_left Float.max 0. weights in
  Array.iteri
    (fun i w -> g.(np + i) <- if wmax > 0. then Float.max 0. (w /. wmax) else 0.5)
    weights;
  g

let param_names e = Array.map (fun r -> r.name) e.param_ranges
