(** Pareto dominance and non-dominated front extraction (§3.3 of the
    paper). *)

val dominates : maximise:bool array -> float array -> float array -> bool
(** [dominates ~maximise a b]: [a] is at least as good as [b] in every
    objective and strictly better in at least one. *)

val non_dominated : maximise:bool array -> float array array -> int list
(** Indices of the non-dominated points, ascending; O(n^2), any number of
    objectives. *)

val front_2d : float array array -> int list
(** Fast path for two maximised objectives: O(n log n) sort-and-scan.
    Coincident duplicate points are all retained (matching the paper, which
    counts every non-dominated circuit candidate). *)

val crowding_distance : float array array -> int array -> float array
(** NSGA-II crowding distance of each member of the given front (index array
    into the points); boundary points get [infinity]. *)

val hypervolume_2d : ref_point:float * float -> float array array -> float
(** Dominated hypervolume of a set of 2-D maximised points with respect to a
    reference point below/left of all of them.  A quality indicator for
    comparing optimiser runs. *)

val front_spread : float array array -> int list -> (float * float) array
(** Sorted (obj0, obj1) pairs of a front, for reporting. *)
