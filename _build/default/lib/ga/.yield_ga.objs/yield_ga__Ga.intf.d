lib/ga/ga.mli: Genome Operators Yield_stats
