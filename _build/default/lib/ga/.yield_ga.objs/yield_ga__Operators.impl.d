lib/ga/operators.ml: Array Float Genome Stdlib Yield_stats
