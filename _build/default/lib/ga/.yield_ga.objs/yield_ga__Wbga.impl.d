lib/ga/wbga.ml: Array Fitness Float Fun Ga Genome List Pareto
