lib/ga/pareto.ml: Array Float Fun List
