lib/ga/ga.ml: Array Float Fun Genome List Operators Stdlib Yield_stats
