lib/ga/operators.mli: Genome Yield_stats
