lib/ga/nsga2.mli: Genome Yield_stats
