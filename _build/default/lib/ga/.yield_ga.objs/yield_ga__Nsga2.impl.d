lib/ga/nsga2.ml: Array Float Genome List Operators Pareto Yield_stats
