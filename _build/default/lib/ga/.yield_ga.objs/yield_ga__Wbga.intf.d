lib/ga/wbga.mli: Ga Genome Yield_stats
