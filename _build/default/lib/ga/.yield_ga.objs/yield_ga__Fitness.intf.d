lib/ga/fitness.mli:
