lib/ga/fitness.ml: Array Float
