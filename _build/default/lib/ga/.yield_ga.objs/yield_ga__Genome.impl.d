lib/ga/genome.ml: Array Float Yield_stats
