lib/ga/pareto.mli:
