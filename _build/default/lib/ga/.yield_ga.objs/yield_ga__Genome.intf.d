lib/ga/genome.mli: Yield_stats
