(** GA strings.

    The paper's WBGA encodes each individual as a concatenation of the
    normalised designable parameters and the objective weights (Figure 4 /
    Figure 6).  All genes live in [0, 1]; parameters are mapped onto their
    designer-imposed ranges when decoded and weights are normalised to sum to
    one (equation 4). *)

type scale = Linear | Log

type range = { name : string; lo : float; hi : float; scale : scale }

val range : string -> lo:float -> hi:float -> range
(** A linearly mapped parameter.  @raise Invalid_argument unless [lo < hi]. *)

val log_range : string -> lo:float -> hi:float -> range
(** A logarithmically mapped parameter (for quantities spanning decades,
    e.g. capacitances).  @raise Invalid_argument unless [0 < lo < hi]. *)

type encoding = { param_ranges : range array; n_weights : int }

val encoding : range array -> n_weights:int -> encoding
(** @raise Invalid_argument for negative weight counts or empty parameters. *)

val length : encoding -> int
(** Total gene count. *)

type t = float array
(** Genes in [0, 1]; length must equal [length encoding]. *)

val random : encoding -> Yield_stats.Rng.t -> t

val clamp : t -> unit
(** Clip all genes into [0, 1] in place. *)

val params : encoding -> t -> float array
(** Decoded physical parameter values. *)

val weights : encoding -> t -> float array
(** Equation (4): genes normalised to sum to one.  A degenerate all-zero
    weight section decodes to uniform weights. *)

val of_params : encoding -> params:float array -> weights:float array -> t
(** Inverse encoding (parameters clamped into their ranges); useful for
    seeding known-good designs. *)

val param_names : encoding -> string array
