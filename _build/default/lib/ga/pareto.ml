let dominates ~maximise a b =
  let m = Array.length maximise in
  if Array.length a <> m || Array.length b <> m then
    invalid_arg "Pareto.dominates: objective count mismatch";
  let at_least_as_good = ref true and strictly_better = ref false in
  for j = 0 to m - 1 do
    let ga, gb = if maximise.(j) then (a.(j), b.(j)) else (-.a.(j), -.b.(j)) in
    if ga < gb then at_least_as_good := false;
    if ga > gb then strictly_better := true
  done;
  !at_least_as_good && !strictly_better

let non_dominated ~maximise points =
  let n = Array.length points in
  let dominated = Array.make n false in
  for i = 0 to n - 1 do
    if not dominated.(i) then
      for j = 0 to n - 1 do
        if j <> i && (not dominated.(i)) && dominates ~maximise points.(j) points.(i)
        then dominated.(i) <- true
      done
  done;
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if dominated.(i) then acc else i :: acc)
  in
  collect (n - 1) []

(* Kung's sort-and-scan for two maximised objectives: sort by obj0
   descending (obj1 descending as tie-break), keep points whose obj1 exceeds
   the running maximum.  Ties on both objectives are all kept. *)
let front_2d points =
  let n = Array.length points in
  if n = 0 then []
  else begin
    Array.iter
      (fun p ->
        if Array.length p <> 2 then invalid_arg "Pareto.front_2d: need 2 objectives")
      points;
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        match Float.compare points.(j).(0) points.(i).(0) with
        | 0 -> Float.compare points.(j).(1) points.(i).(1)
        | c -> c)
      order;
    let best1 = ref neg_infinity in
    let front = ref [] in
    Array.iter
      (fun i ->
        let y = points.(i).(1) in
        if y > !best1 then begin
          front := i :: !front;
          best1 := y
        end
        else if y = !best1 then begin
          (* keep exact duplicates of the current frontier point only when the
             x coordinate also ties (otherwise it is dominated) *)
          match !front with
          | j :: _ when points.(j).(0) = points.(i).(0) -> front := i :: !front
          | _ -> ()
        end)
      order;
    List.sort compare !front
  end

let crowding_distance points front =
  let nf = Array.length front in
  let dist = Array.make nf 0. in
  if nf > 0 then begin
    let m = Array.length points.(front.(0)) in
    for j = 0 to m - 1 do
      let order = Array.init nf Fun.id in
      Array.sort
        (fun a b -> Float.compare points.(front.(a)).(j) points.(front.(b)).(j))
        order;
      let lo = points.(front.(order.(0))).(j) in
      let hi = points.(front.(order.(nf - 1))).(j) in
      dist.(order.(0)) <- infinity;
      dist.(order.(nf - 1)) <- infinity;
      if hi > lo then
        for k = 1 to nf - 2 do
          let prev = points.(front.(order.(k - 1))).(j) in
          let next = points.(front.(order.(k + 1))).(j) in
          dist.(order.(k)) <- dist.(order.(k)) +. ((next -. prev) /. (hi -. lo))
        done
    done
  end;
  dist

let hypervolume_2d ~ref_point points =
  let rx, ry = ref_point in
  let front = front_2d points in
  (* walk the front in decreasing obj0; each step adds a rectangle *)
  let members =
    List.map (fun i -> (points.(i).(0), points.(i).(1))) front
    |> List.sort_uniq compare
    |> List.rev (* descending obj0 *)
  in
  let _, total =
    List.fold_left
      (fun (y_prev, acc) (x, y) ->
        if x <= rx || y <= ry then (y_prev, acc)
        else begin
          let height = y -. Float.max ry y_prev in
          if height <= 0. then (y_prev, acc)
          else (y, acc +. ((x -. rx) *. height))
        end)
      (neg_infinity, 0.) members
  in
  total

let front_spread points front =
  let pairs =
    List.map (fun i -> (points.(i).(0), points.(i).(1))) front
    |> List.sort compare
  in
  Array.of_list pairs
