module Rng = Yield_stats.Rng

type config = {
  population_size : int;
  generations : int;
  crossover_eta : float;
  mutation_eta : float;
  mutation_rate : float;
}

let default_config =
  {
    population_size = 100;
    generations = 100;
    crossover_eta = 15.;
    mutation_eta = 20.;
    mutation_rate = 0.1;
  }

type entry = { params : float array; objectives : float array }

type result = {
  front : entry array;
  archive : entry array;
  evaluations : int;
  failures : int;
}

type individual = {
  genome : Genome.t;
  entry : entry option;  (* None = failed evaluation *)
  mutable rank : int;
  mutable crowding : float;
}

(* fast non-dominated sort; failed individuals land in the last rank *)
let rank_population ~maximise pop =
  let n = Array.length pop in
  let objectives i =
    match pop.(i).entry with Some e -> Some e.objectives | None -> None
  in
  let dominates i j =
    match (objectives i, objectives j) with
    | Some a, Some b -> Pareto.dominates ~maximise a b
    | Some _, None -> true
    | None, (Some _ | None) -> false
  in
  let dominated_count = Array.make n 0 in
  let dominated_by = Array.make n [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && dominates i j then begin
        dominated_by.(i) <- j :: dominated_by.(i);
        dominated_count.(j) <- dominated_count.(j) + 1
      end
    done
  done;
  let current = ref [] in
  for i = 0 to n - 1 do
    if dominated_count.(i) = 0 then begin
      pop.(i).rank <- 0;
      current := i :: !current
    end
  done;
  let rank = ref 0 in
  let fronts = ref [] in
  while !current <> [] do
    fronts := !current :: !fronts;
    let next = ref [] in
    List.iter
      (fun i ->
        List.iter
          (fun j ->
            dominated_count.(j) <- dominated_count.(j) - 1;
            if dominated_count.(j) = 0 then begin
              pop.(j).rank <- !rank + 1;
              next := j :: !next
            end)
          dominated_by.(i))
      !current;
    incr rank;
    current := !next
  done;
  List.rev !fronts

let assign_crowding pop fronts =
  let points =
    Array.map
      (fun ind ->
        match ind.entry with
        | Some e -> e.objectives
        | None -> [| neg_infinity |])
      pop
  in
  List.iter
    (fun front ->
      let usable = List.filter (fun i -> pop.(i).entry <> None) front in
      match usable with
      | [] -> ()
      | _ ->
          let idx = Array.of_list usable in
          let dist = Pareto.crowding_distance points idx in
          Array.iteri (fun k i -> pop.(i).crowding <- dist.(k)) idx)
    fronts

let better a b =
  if a.rank <> b.rank then a.rank < b.rank else a.crowding > b.crowding

let run ?(config = default_config) ~param_ranges ~maximise ~rng ~evaluate () =
  let encoding = Genome.encoding param_ranges ~n_weights:0 in
  let evaluations = ref 0 and failures = ref 0 in
  let archive = ref [] in
  let make genome =
    incr evaluations;
    let params = Genome.params encoding genome in
    let entry =
      match evaluate params with
      | Some objectives ->
          let e = { params; objectives } in
          archive := e :: !archive;
          Some e
      | None ->
          incr failures;
          None
    in
    { genome; entry; rank = max_int; crowding = 0. }
  in
  let pop_size = config.population_size in
  let population =
    ref (Array.init pop_size (fun _ -> make (Genome.random encoding rng)))
  in
  let fronts = rank_population ~maximise !population in
  assign_crowding !population fronts;
  for _gen = 2 to config.generations do
    let pop = !population in
    let pick () =
      let a = pop.(Rng.int rng pop_size) and b = pop.(Rng.int rng pop_size) in
      if better a b then a else b
    in
    let offspring = ref [] in
    while List.length !offspring < pop_size do
      let p1 = pick () and p2 = pick () in
      let c1, c2 =
        Operators.cross (Operators.Sbx config.crossover_eta) rng p1.genome
          p2.genome
      in
      let m = Operators.Polynomial { eta = config.mutation_eta; rate = config.mutation_rate } in
      Operators.mutate m rng c1;
      Operators.mutate m rng c2;
      offspring := make c1 :: !offspring;
      if List.length !offspring < pop_size then offspring := make c2 :: !offspring
    done;
    let union = Array.append pop (Array.of_list !offspring) in
    let fronts = rank_population ~maximise union in
    assign_crowding union fronts;
    (* environmental selection: fill by rank, break the last front by
       crowding *)
    let selected = ref [] and count = ref 0 in
    List.iter
      (fun front ->
        if !count < pop_size then begin
          let members = List.map (fun i -> union.(i)) front in
          let members =
            List.sort (fun a b -> Float.compare b.crowding a.crowding) members
          in
          List.iter
            (fun ind ->
              if !count < pop_size then begin
                selected := ind :: !selected;
                incr count
              end)
            members
        end)
      fronts;
    population := Array.of_list (List.rev !selected)
  done;
  let final = !population in
  let fronts = rank_population ~maximise final in
  assign_crowding final fronts;
  let front =
    Array.of_list
      (List.filter_map
         (fun ind -> if ind.rank = 0 then ind.entry else None)
         (Array.to_list final))
  in
  Array.sort (fun a b -> Float.compare a.objectives.(0) b.objectives.(0)) front;
  {
    front;
    archive = Array.of_list (List.rev !archive);
    evaluations = !evaluations;
    failures = !failures;
  }
