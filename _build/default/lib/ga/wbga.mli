(** The paper's weight-based genetic algorithm (§3.2).

    Each GA string carries the designable parameters {e and} the objective
    weights; the weights evolve with the design, so the population explores
    many scalarisation directions at once and its evaluation archive samples
    the whole performance trade-off.  The Pareto front is then extracted from
    the archive (§3.3). *)

type objective = { name : string; maximise : bool }

type entry = {
  params : float array;  (** decoded designable parameters *)
  objectives : float array;  (** raw objective values *)
  weights : float array;  (** decoded, normalised weights (eq. 4) *)
  fitness : float;  (** eq. 5 weighted normalised sum *)
}

type result = {
  archive : entry array;  (** every successfully evaluated individual *)
  front : entry array;
      (** non-dominated subset of the archive, sorted by the first
          objective *)
  evaluations : int;  (** total evaluation calls, including failed ones *)
  failures : int;  (** evaluations that returned [None] *)
  history : float array;  (** best fitness per generation *)
}

val run :
  ?config:Ga.config ->
  param_ranges:Genome.range array ->
  objectives:objective array ->
  rng:Yield_stats.Rng.t ->
  evaluate:(float array -> float array option) ->
  unit ->
  result
(** [evaluate params] returns the raw objective values, or [None] when the
    underlying simulation fails; failed individuals receive [neg_infinity]
    fitness and are excluded from the archive and front. *)
