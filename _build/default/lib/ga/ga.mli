(** The generational genetic-algorithm engine.

    The engine is payload-polymorphic: scoring a population returns, for each
    genome, an application payload (e.g. raw objective values) and a scalar
    fitness to be maximised.  Batch scoring lets the caller normalise
    fitnesses across the whole generation, as the WBGA requires. *)

type config = {
  population_size : int;
  generations : int;
  selection : Operators.selection;
  crossover : Operators.crossover;
  crossover_rate : float;  (** probability a pair is crossed at all *)
  mutation : Operators.mutation;
  elite_count : int;  (** best-of-generation individuals copied unchanged *)
}

val default_config : config
(** Population 100 x 100 generations (the paper's setting), binary
    tournament, one-point crossover at 0.9, gaussian mutation. *)

type 'a evaluated = { genome : Genome.t; payload : 'a; fitness : float }

type 'a result = {
  archive : 'a evaluated array;
      (** every individual ever evaluated, in evaluation order *)
  best : 'a evaluated;
  history : float array;  (** best fitness per generation *)
  evaluations : int;
}

val run :
  config -> Genome.encoding -> Yield_stats.Rng.t ->
  score:(Genome.t array -> ('a * float) array) ->
  'a result
(** @raise Invalid_argument for non-positive population/generations or if
    [score] returns the wrong number of results. *)
