(** Genetic operators: selection, crossover, mutation. *)

type selection =
  | Tournament of int  (** pick the best of k uniformly drawn individuals *)
  | Roulette  (** fitness-proportional (fitnesses shifted to be positive) *)

type crossover =
  | One_point
  | Uniform of float  (** per-gene exchange probability *)
  | Blend of float  (** BLX-alpha *)
  | Sbx of float  (** simulated binary crossover, distribution index eta *)

type mutation =
  | Gaussian of { sigma : float; rate : float }
  | Uniform_reset of { rate : float }
  | Polynomial of { eta : float; rate : float }

val select : selection -> Yield_stats.Rng.t -> fitness:float array -> int
(** Index of the selected individual.
    @raise Invalid_argument on an empty population. *)

val cross :
  crossover -> Yield_stats.Rng.t -> Genome.t -> Genome.t -> Genome.t * Genome.t
(** Two offspring; parents are not modified.  Children are clamped to
    [0, 1]. *)

val mutate : mutation -> Yield_stats.Rng.t -> Genome.t -> unit
(** In-place mutation followed by clamping. *)
