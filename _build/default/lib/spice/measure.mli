(** Measurements on sampled transfer functions: the quantities the paper's
    objective functions are built from. *)

val magnitude_db : Complex.t -> float

val phase_deg : Complex.t -> float
(** Principal-value phase in degrees, (-180, 180]. *)

val magnitudes_db : Ac.bode -> float array

val phases_deg_unwrapped : Ac.bode -> float array
(** Phase with 360-degree jumps removed, anchored at the first point. *)

val dc_gain_db : Ac.bode -> float
(** Magnitude at the lowest sampled frequency. *)

val unity_gain_freq : Ac.bode -> float option
(** First 0 dB downward crossing, log-interpolated between samples; [None]
    when the magnitude never reaches unity from above. *)

val phase_margin_deg : Ac.bode -> float option
(** [180 + phase(f_unity)] using the unwrapped phase; [None] when there is no
    unity crossing. *)

val gain_margin_db : Ac.bode -> float option
(** [-magnitude] at the first -180 degree phase crossing. *)

val f3db : Ac.bode -> float option
(** Frequency of the first 3 dB drop below the DC gain. *)

val gain_at : Ac.bode -> float -> float
(** [gain_at bode f]: magnitude in dB, log-interpolated at frequency [f].
    Clamps to the sampled range. *)

val crossing :
  xs:float array -> ys:float array -> level:float -> ?log_x:bool -> unit ->
  float option
(** First downward crossing of [ys] through [level], interpolated on [xs]
    (log-spaced interpolation when [log_x]); exposed for tests and reuse. *)
