type node = int

let ground = 0

type waveform =
  | Constant
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Sine of { offset : float; amplitude : float; freq : float; phase_deg : float }

let waveform_value wave ~dc t =
  match wave with
  | Constant -> dc
  | Sine { offset; amplitude; freq; phase_deg } ->
      offset
      +. amplitude
         *. sin ((2. *. Float.pi *. freq *. t) +. (phase_deg *. Float.pi /. 180.))
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
      if t < delay then v1
      else begin
        let t' =
          let cycle = t -. delay in
          if period > 0. && Float.is_finite period then Float.rem cycle period
          else cycle
        in
        if t' < rise then
          if rise <= 0. then v2 else v1 +. ((v2 -. v1) *. t' /. rise)
        else if t' < rise +. width then v2
        else if t' < rise +. width +. fall then
          if fall <= 0. then v1
          else v2 +. ((v1 -. v2) *. (t' -. rise -. width) /. fall)
        else v1
      end

type t =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Vsource of {
      name : string;
      npos : node;
      nneg : node;
      dc : float;
      ac : float;
      wave : waveform;
    }
  | Isource of {
      name : string;
      npos : node;
      nneg : node;
      dc : float;
      ac : float;
      wave : waveform;
    }
  | Vccs of {
      name : string;
      out_p : node;
      out_n : node;
      in_p : node;
      in_n : node;
      gm : float;
    }
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      b : node;
      model : Mosfet.model;
      w : float;
      l : float;
    }

let name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vccs { name; _ }
  | Mosfet { name; _ } ->
      name

let nodes = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } -> [ n1; n2 ]
  | Vsource { npos; nneg; _ } | Isource { npos; nneg; _ } -> [ npos; nneg ]
  | Vccs { out_p; out_n; in_p; in_n; _ } -> [ out_p; out_n; in_p; in_n ]
  | Mosfet { d; g; s; b; _ } -> [ d; g; s; b ]
