(** Time-domain measurements on transient waveforms: the step-response
    figures of merit (slew rate, settling, overshoot) that complement the
    paper's frequency-domain objectives. *)

val value_at : times:float array -> values:float array -> float -> float
(** Linear interpolation; clamps outside the simulated span. *)

val final_value : values:float array -> float
(** Mean of the last 5 % of samples (settling estimate). *)

val slew_rate : times:float array -> values:float array -> float
(** Maximum |dv/dt| over the waveform, V/s. *)

val settling_time :
  ?tolerance:float -> times:float array -> values:float array -> unit ->
  float option
(** Time after which the waveform stays within [tolerance] (default 1 %,
    relative to the total transition) of its final value; [None] if it never
    settles. *)

val overshoot_pct : times:float array -> values:float array -> float
(** Peak excursion beyond the final value, as a percentage of the transition
    amplitude (0 when the response is monotonic or the transition is
    degenerate). *)

val rise_time :
  ?low:float -> ?high:float -> times:float array -> values:float array -> unit ->
  float option
(** 10 %-90 % (by default) transition time of a rising step response. *)
