module Vec = Yield_numeric.Vec
module Mat = Yield_numeric.Mat

type layout = {
  n_nodes : int;
  size : int;
  branches : (string, int) Hashtbl.t;
}

let layout circuit =
  let n_nodes = Circuit.node_count circuit in
  let branches = Hashtbl.create 8 in
  let next = ref n_nodes in
  Array.iter
    (fun dev ->
      match dev with
      | Device.Vsource { name; _ } ->
          Hashtbl.replace branches name !next;
          incr next
      | Device.Resistor _ | Device.Capacitor _ | Device.Isource _
      | Device.Vccs _ | Device.Mosfet _ ->
          ())
    (Circuit.devices circuit);
  { n_nodes; size = !next; branches }

let size l = l.size

let n_nodes l = l.n_nodes

let branch_index l name = Hashtbl.find l.branches name

let voltage x n = if n = Device.ground then 0. else x.(n - 1)

(* Stamping helpers; ground rows and columns are skipped. *)

let stamp_g m a b g =
  if a <> Device.ground then Mat.add_to m (a - 1) (a - 1) g;
  if b <> Device.ground then Mat.add_to m (b - 1) (b - 1) g;
  if a <> Device.ground && b <> Device.ground then begin
    Mat.add_to m (a - 1) (b - 1) (-.g);
    Mat.add_to m (b - 1) (a - 1) (-.g)
  end

(* transconductance: current [g * v(cp, cn)] leaves node [op] and enters
   node [on] *)
let stamp_gm m op_node on_node cp cn g =
  let entry row col sign =
    if row <> Device.ground && col <> Device.ground then
      Mat.add_to m (row - 1) (col - 1) (sign *. g)
  in
  entry op_node cp 1.;
  entry op_node cn (-1.);
  entry on_node cp (-1.);
  entry on_node cn 1.

let inject rhs node value =
  if node <> Device.ground then rhs.(node - 1) <- rhs.(node - 1) +. value

(* NMOS-normalised linearisation of a MOSFET at the guess [x].  Returns the
   operating point plus the device-convention drain current [ids_eff] (the
   current entering the drain terminal). *)
let mos_linearise ~model ~w ~l ~d ~g ~s ~b x =
  let vd = voltage x d
  and vg = voltage x g
  and vs = voltage x s
  and vb = voltage x b in
  let vgs, vds, vbs =
    match model.Mosfet.polarity with
    | Mosfet.Nmos -> (vg -. vs, vd -. vs, vb -. vs)
    | Mosfet.Pmos -> (vs -. vg, vs -. vd, vs -. vb)
  in
  let op = Mosfet.eval model ~w ~l ~vgs ~vds ~vbs in
  let ids_eff =
    match model.Mosfet.polarity with
    | Mosfet.Nmos -> op.Mosfet.ids
    | Mosfet.Pmos -> -.op.Mosfet.ids
  in
  (op, ids_eff)

let stamp_conductance = stamp_g

let stamp_transconductance m ~out_p ~out_n ~in_p ~in_n g =
  stamp_gm m out_p out_n in_p in_n g

let stamp_branch m l ~name ~npos ~nneg =
  let br = Hashtbl.find l.branches name in
  if npos <> Device.ground then begin
    Mat.add_to m (npos - 1) br 1.;
    Mat.add_to m br (npos - 1) 1.
  end;
  if nneg <> Device.ground then begin
    Mat.add_to m (nneg - 1) br (-1.);
    Mat.add_to m br (nneg - 1) (-1.)
  end

let stamp_mosfet_dc mat rhs ~x ~d ~g:gate ~s ~b ~model ~w ~l =
  let op, ids_eff = mos_linearise ~model ~w ~l ~d ~g:gate ~s ~b x in
  let gm = op.Mosfet.gm and gds = op.Mosfet.gds and gmb = op.Mosfet.gmb in
  stamp_gm mat d s gate s gm;
  stamp_g mat d s gds;
  stamp_gm mat d s b s gmb;
  let vd = voltage x d
  and vg = voltage x gate
  and vs = voltage x s
  and vb = voltage x b in
  let linear_current =
    (gm *. (vg -. vs)) +. (gds *. (vd -. vs)) +. (gmb *. (vb -. vs))
  in
  let ieq = linear_current -. ids_eff in
  inject rhs d ieq;
  inject rhs s (-.ieq);
  op

let assemble_dc circuit l ~x ~source_scale ~gmin =
  let g = Mat.create l.size l.size in
  let rhs = Vec.create l.size in
  for i = 0 to l.n_nodes - 1 do
    Mat.add_to g i i gmin
  done;
  let stamp_device dev =
    match dev with
    | Device.Resistor { n1; n2; ohms; _ } -> stamp_g g n1 n2 (1. /. ohms)
    | Device.Capacitor _ -> ()
    | Device.Vsource { name; npos; nneg; dc; _ } ->
        stamp_branch g l ~name ~npos ~nneg;
        rhs.(Hashtbl.find l.branches name) <- dc *. source_scale
    | Device.Isource { npos; nneg; dc; _ } ->
        inject rhs npos (-.dc *. source_scale);
        inject rhs nneg (dc *. source_scale)
    | Device.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
        stamp_gm g out_p out_n in_p in_n gm
    | Device.Mosfet { d; g = gate; s; b; model; w; l = len; _ } ->
        (* For both polarities, in node-voltage terms:
             d ids_eff/d vg = gm, d/d vd = gds, d/d vb = gmb,
             d/d vs = -(gm + gds + gmb).
           (For PMOS the two sign flips cancel.) *)
        ignore (stamp_mosfet_dc g rhs ~x ~d ~g:gate ~s ~b ~model ~w ~l:len)
  in
  Array.iter stamp_device (Circuit.devices circuit);
  (g, rhs)

let mos_operating_points circuit ~x =
  let collect acc dev =
    match dev with
    | Device.Mosfet { name; d; g; s; b; model; w; l } ->
        let op, _ = mos_linearise ~model ~w ~l ~d ~g ~s ~b x in
        (name, op) :: acc
    | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
    | Device.Isource _ | Device.Vccs _ ->
        acc
  in
  List.rev (Array.fold_left collect [] (Circuit.devices circuit))

let assemble_ac circuit l ~ops =
  let g = Mat.create l.size l.size in
  let c = Mat.create l.size l.size in
  let rhs = Array.make l.size Complex.zero in
  let stamp_device dev =
    match dev with
    | Device.Resistor { n1; n2; ohms; _ } -> stamp_g g n1 n2 (1. /. ohms)
    | Device.Capacitor { n1; n2; farads; _ } -> stamp_g c n1 n2 farads
    | Device.Vsource { name; npos; nneg; ac; _ } ->
        stamp_branch g l ~name ~npos ~nneg;
        rhs.(Hashtbl.find l.branches name) <- { Complex.re = ac; im = 0. }
    | Device.Isource { npos; nneg; ac; _ } ->
        if npos <> Device.ground then
          rhs.(npos - 1) <- Complex.add rhs.(npos - 1) { Complex.re = -.ac; im = 0. };
        if nneg <> Device.ground then
          rhs.(nneg - 1) <- Complex.add rhs.(nneg - 1) { Complex.re = ac; im = 0. }
    | Device.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
        stamp_gm g out_p out_n in_p in_n gm
    | Device.Mosfet { name; d; g = gate; s; b; _ } ->
        let op = ops name in
        stamp_gm g d s gate s op.Mosfet.gm;
        stamp_g g d s op.Mosfet.gds;
        stamp_gm g d s b s op.Mosfet.gmb;
        stamp_g c gate s op.Mosfet.cgs;
        stamp_g c gate d op.Mosfet.cgd;
        stamp_g c d b op.Mosfet.cdb;
        stamp_g c s b op.Mosfet.csb
  in
  Array.iter stamp_device (Circuit.devices circuit);
  (* small leak keeps floating nodes (e.g. pure-capacitive) solvable *)
  for i = 0 to l.n_nodes - 1 do
    Mat.add_to g i i 1e-12
  done;
  (g, c, rhs)
