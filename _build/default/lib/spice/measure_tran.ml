let check_lengths times values =
  if Array.length times <> Array.length values || Array.length times < 2 then
    invalid_arg "Measure_tran: need matching arrays of at least two samples"

let value_at ~times ~values t =
  check_lengths times values;
  let n = Array.length times in
  if t <= times.(0) then values.(0)
  else if t >= times.(n - 1) then values.(n - 1)
  else begin
    let rec find i = if times.(i + 1) >= t then i else find (i + 1) in
    let i = find 0 in
    let u = (t -. times.(i)) /. (times.(i + 1) -. times.(i)) in
    values.(i) +. (u *. (values.(i + 1) -. values.(i)))
  end

let final_value ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Measure_tran.final_value: empty";
  let tail = Stdlib.max 1 (n / 20) in
  let acc = ref 0. in
  for i = n - tail to n - 1 do
    acc := !acc +. values.(i)
  done;
  !acc /. float_of_int tail

let slew_rate ~times ~values =
  check_lengths times values;
  let best = ref 0. in
  for i = 1 to Array.length times - 1 do
    let dt = times.(i) -. times.(i - 1) in
    if dt > 0. then
      best := Float.max !best (Float.abs ((values.(i) -. values.(i - 1)) /. dt))
  done;
  !best

let transition_amplitude ~values =
  Float.abs (final_value ~values -. values.(0))

let settling_time ?(tolerance = 0.01) ~times ~values () =
  check_lengths times values;
  let target = final_value ~values in
  let amplitude = transition_amplitude ~values in
  if amplitude <= 0. then Some times.(0)
  else begin
    let band = tolerance *. amplitude in
    (* last sample outside the band determines settling *)
    let n = Array.length values in
    let rec scan_back i =
      if i < 0 then Some times.(0)
      else if Float.abs (values.(i) -. target) > band then
        if i = n - 1 then None else Some times.(i + 1)
      else scan_back (i - 1)
    in
    scan_back (n - 1)
  end



let overshoot_pct ~times ~values =
  check_lengths times values;
  let target = final_value ~values in
  let amplitude = transition_amplitude ~values in
  if amplitude <= 0. then 0.
  else begin
    let rising = target > values.(0) in
    let peak =
      Array.fold_left (if rising then Float.max else Float.min) values.(0) values
    in
    let excess = if rising then peak -. target else target -. peak in
    Float.max 0. (100. *. excess /. amplitude)
  end

let rise_time ?(low = 0.1) ?(high = 0.9) ~times ~values () =
  check_lengths times values;
  let v0 = values.(0) in
  let v_final = final_value ~values in
  let amplitude = v_final -. v0 in
  if Float.abs amplitude <= 0. then None
  else begin
    let level frac = v0 +. (frac *. amplitude) in
    let crossing target =
      let rec scan i =
        if i >= Array.length values then None
        else begin
          let prev = values.(i - 1) and cur = values.(i) in
          let between =
            (prev <= target && target <= cur) || (cur <= target && target <= prev)
          in
          if between then begin
            let u = if cur = prev then 0. else (target -. prev) /. (cur -. prev) in
            Some (times.(i - 1) +. (u *. (times.(i) -. times.(i - 1))))
          end
          else scan (i + 1)
        end
      in
      scan 1
    in
    match (crossing (level low), crossing (level high)) with
    | Some t_lo, Some t_hi when t_hi >= t_lo -> Some (t_hi -. t_lo)
    | _ -> None
  end
