(** Circuit elements.

    Nodes are integers; node 0 is ground.  Sign conventions follow SPICE:
    for sources, positive current flows out of the positive terminal through
    the external circuit. *)

type node = int

val ground : node

type waveform =
  | Constant
      (** hold the DC value for all time *)
  | Pulse of {
      v1 : float;  (** initial level *)
      v2 : float;  (** pulsed level *)
      delay : float;  (** s *)
      rise : float;
      fall : float;
      width : float;
      period : float;  (** 0 or infinite = single pulse *)
    }
  | Sine of { offset : float; amplitude : float; freq : float; phase_deg : float }

val waveform_value : waveform -> dc:float -> float -> float
(** Source value at a given time; [Constant] returns [dc]. *)

type t =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Vsource of {
      name : string;
      npos : node;
      nneg : node;
      dc : float;
      ac : float;
      wave : waveform;
    }
  | Isource of {
      name : string;
      npos : node;
      nneg : node;
      dc : float;
      ac : float;
      wave : waveform;
    }
      (** DC current [dc] flows from [npos] to [nneg] inside the source,
          i.e. it is injected into node [nneg] and drawn from [npos]. *)
  | Vccs of {
      name : string;
      out_p : node;
      out_n : node;
      in_p : node;
      in_n : node;
      gm : float;
    }
      (** Current [gm * v(in_p, in_n)] flows from [out_p] to [out_n]. *)
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      b : node;
      model : Mosfet.model;
      w : float;  (** metres *)
      l : float;  (** metres *)
    }

val name : t -> string

val nodes : t -> node list
(** All terminals, in declaration order. *)
