(** DC operating-point analysis: damped Newton–Raphson on the MNA system,
    with gmin-stepping and source-stepping homotopies as fallbacks. *)

type t = {
  x : Yield_numeric.Vec.t;  (** converged unknown vector *)
  layout : Mna.layout;
  mos_ops : (string * Mosfet.op) list;
  iterations : int;  (** Newton iterations of the final (full-source) solve *)
}

type options = {
  max_iterations : int;  (** per Newton attempt; default 150 *)
  vtol : float;  (** voltage convergence tolerance; default 1e-9 *)
  max_step : float;  (** per-iteration voltage step clamp, V; default 0.5 *)
  gmin : float;  (** baseline node-to-ground conductance; default 1e-12 *)
}

val default_options : options

type error =
  | No_convergence of { attempts : string list }
  | Singular_system of string

val error_to_string : error -> string

val solve : ?options:options -> Circuit.t -> (t, error) result

val voltage : t -> Device.node -> float

val voltage_by_name : t -> Circuit.t -> string -> float
(** @raise Not_found for an unknown node name. *)

val branch_current : t -> string -> float
(** Current through the named voltage source.
    @raise Not_found if there is no such source. *)

val mos_op : t -> string -> Mosfet.op
(** @raise Not_found for an unknown MOSFET. *)

val pp : Circuit.t -> Format.formatter -> t -> unit
(** Human-readable operating-point report (node voltages and device bias). *)
