(** MOS transistor model.

    A single-equation EKV-style model: smooth from weak to strong inversion,
    with slope factor, body effect, and channel-length modulation.  It stands
    in for the BSim3v3 foundry models of the paper (see DESIGN.md §2): the
    quantities the optimisation flow depends on — gm, gds, gmb and the device
    capacitances as functions of W, L and bias — have the correct first-order
    behaviour.

    All voltages in the [eval] interface are source-referenced NMOS-convention
    values; PMOS devices are handled by the device layer flipping signs. *)

type polarity = Nmos | Pmos

type model = {
  polarity : polarity;
  vth0 : float;  (** zero-bias threshold magnitude, V (positive for both) *)
  kp : float;  (** transconductance parameter mu*Cox, A/V^2 *)
  gamma : float;  (** body-effect coefficient, sqrt(V) *)
  phi : float;  (** surface potential, V *)
  lambda0 : float;  (** channel-length modulation, um/V: lambda = lambda0/L[um] *)
  n_slope : float;  (** subthreshold slope factor *)
  cox : float;  (** gate-oxide capacitance, F/m^2 *)
  cgso : float;  (** gate-source overlap, F/m *)
  cgdo : float;  (** gate-drain overlap, F/m *)
  cj : float;  (** junction area capacitance, F/m^2 *)
  cjsw : float;  (** junction sidewall capacitance, F/m *)
  ext : float;  (** source/drain diffusion extension, m *)
}

val temperature_voltage : float
(** kT/q at 300 K. *)

type region = Cutoff | Weak | Saturation | Triode

type op = {
  ids : float;  (** drain current, A (NMOS convention: positive into drain) *)
  gm : float;  (** dIds/dVgs, S *)
  gds : float;  (** dIds/dVds, S *)
  gmb : float;  (** dIds/dVbs, S *)
  vth : float;  (** body-adjusted threshold, V *)
  vdsat : float;  (** saturation voltage, V *)
  vgs : float;
  vds : float;
  vbs : float;
  region : region;
  cgs : float;  (** F *)
  cgd : float;
  cdb : float;
  csb : float;
}

val region_to_string : region -> string

val eval : model -> w:float -> l:float -> vgs:float -> vds:float -> vbs:float -> op
(** Evaluate at a bias point.  [w] and [l] in metres.  Handles [vds < 0] by
    source/drain exchange so Newton iterations may pass through reversal.
    @raise Invalid_argument for non-positive [w] or [l]. *)

val with_deltas : model -> dvth:float -> dkp_rel:float -> dlambda_rel:float -> model
(** [with_deltas m ~dvth ~dkp_rel ~dlambda_rel] is [m] with threshold shifted
    by [dvth] volts, [kp] scaled by [1 + dkp_rel] and [lambda0] scaled by
    [1 + dlambda_rel]; the hook used by process-variation sampling. *)
