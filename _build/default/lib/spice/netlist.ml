exception Parse_error of { line : int; message : string }

type analysis =
  | Op
  | Ac_analysis of { per_decade : int; f_lo : float; f_hi : float; out : string }
  | Tran_analysis of { dt : float; t_stop : float; out : string }
  | Dc_analysis of {
      source : string;
      start : float;
      stop : float;
      step : float;
      out : string;
    }

let fail line message = raise (Parse_error { line; message })

let suffixes =
  [
    ("meg", 1e6); ("t", 1e12); ("g", 1e9); ("k", 1e3); ("m", 1e-3); ("u", 1e-6);
    ("n", 1e-9); ("p", 1e-12); ("f", 1e-15);
  ]

let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  let try_suffix (suffix, scale) =
    let ls = String.length s and lf = String.length suffix in
    if ls > lf && String.sub s (ls - lf) lf = suffix then
      let body = String.sub s 0 (ls - lf) in
      match float_of_string_opt body with
      | Some v -> Some (v *. scale)
      | None -> None
    else None
  in
  match float_of_string_opt s with
  | Some v -> v
  | None -> begin
      match List.find_map try_suffix suffixes with
      | Some v -> v
      | None -> failwith ("Netlist.parse_value: cannot parse " ^ s)
    end

let split_fields line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* key=value option fields at the end of a card *)
let parse_options line_no fields =
  List.map
    (fun field ->
      match String.index_opt field '=' with
      | None -> fail line_no ("expected key=value, got " ^ field)
      | Some i ->
          ( String.lowercase_ascii (String.sub field 0 i),
            String.sub field (i + 1) (String.length field - i - 1) ))
    fields

let model_of_options line_no polarity opts =
  let get key default =
    match List.assoc_opt key opts with
    | Some v -> parse_value v
    | None -> default
  in
  let required key =
    match List.assoc_opt key opts with
    | Some v -> parse_value v
    | None -> fail line_no ("missing model parameter " ^ key)
  in
  {
    Mosfet.polarity;
    vth0 = required "vth0";
    kp = required "kp";
    gamma = get "gamma" 0.5;
    phi = get "phi" 0.7;
    lambda0 = get "lambda0" 0.05;
    n_slope = get "n" 1.3;
    cox = get "cox" 4.5e-3;
    cgso = get "cgso" 1.2e-10;
    cgdo = get "cgdo" 1.2e-10;
    cj = get "cj" 9e-4;
    cjsw = get "cjsw" 2.5e-10;
    ext = get "ext" 8.5e-7;
  }

(* a subcircuit definition: ports plus body cards kept as (line_no, fields) *)
type subckt = { ports : string list; body : (int * string list) list }

let clean_fields line =
  let line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '*' then [] else split_fields trimmed

let parse_analysis line_no fields =
  match fields with
  | [ ".op" ] -> Op
  | [ ".ac"; mode; pts; f_lo; f_hi; out ]
    when String.lowercase_ascii mode = "dec" ->
      Ac_analysis
        {
          per_decade = int_of_float (parse_value pts);
          f_lo = parse_value f_lo;
          f_hi = parse_value f_hi;
          out;
        }
  | [ ".tran"; dt; t_stop; out ] ->
      Tran_analysis { dt = parse_value dt; t_stop = parse_value t_stop; out }
  | [ ".dc"; source; start; stop; step; out ] ->
      Dc_analysis
        {
          source;
          start = parse_value start;
          stop = parse_value stop;
          step = parse_value step;
          out;
        }
  | _ -> fail line_no ("malformed analysis card: " ^ String.concat " " fields)

let is_analysis_card lower =
  lower = ".op" || lower = ".ac" || lower = ".tran" || lower = ".dc"

let parse_with_analyses text =
  let circuit = Circuit.create () in
  let analyses = ref [] in
  let models : (string, Mosfet.model) Hashtbl.t = Hashtbl.create 8 in
  let subckts : (string, subckt) Hashtbl.t = Hashtbl.create 4 in
  let nodeset_entry rename field line_no =
    (* v(<node>)=<volts> *)
    match String.index_opt field '=' with
    | None -> fail line_no "malformed .nodeset entry"
    | Some eq ->
        let lhs = String.sub field 0 eq in
        let rhs = String.sub field (eq + 1) (String.length field - eq - 1) in
        let len = String.length lhs in
        if len < 4 || String.lowercase_ascii (String.sub lhs 0 2) <> "v("
           || lhs.[len - 1] <> ')'
        then fail line_no "malformed .nodeset entry"
        else begin
          let node_name = rename (String.sub lhs 2 (len - 3)) in
          Circuit.nodeset circuit (Circuit.node circuit node_name)
            (parse_value rhs)
        end
  in
  (* [rename] maps node names (instance ports to outer nodes, internals to
     prefixed names); [prefix] is prepended to device names *)
  let rec handle_fields ~rename ~prefix line_no fields =
    match fields with
    | [] -> ()
    | card :: rest -> begin
        let lower = String.lowercase_ascii card in
        let name = prefix ^ card in
        match (lower.[0], rest) with
        | '.', _ when lower = ".end" || lower = ".ends" -> ()
        | '.', _ when is_analysis_card lower ->
            if prefix <> "" then
              fail line_no "analysis cards are not allowed inside .subckt"
            else analyses := parse_analysis line_no fields :: !analyses
        | '.', model_name :: kind :: opts when lower = ".model" ->
            let polarity =
              match String.lowercase_ascii kind with
              | "nmos" -> Mosfet.Nmos
              | "pmos" -> Mosfet.Pmos
              | other -> fail line_no ("unknown model kind " ^ other)
            in
            Hashtbl.replace models model_name
              (model_of_options line_no polarity (parse_options line_no opts))
        | '.', entries when lower = ".nodeset" ->
            List.iter (fun f -> nodeset_entry rename f line_no) entries
        | '.', _ -> fail line_no ("unknown directive " ^ card)
        | ('r' | 'R'), [ n1; n2; value ] ->
            Circuit.add_resistor circuit ~name (rename n1) (rename n2)
              (parse_value value)
        | ('c' | 'C'), [ n1; n2; value ] ->
            Circuit.add_capacitor circuit ~name (rename n1) (rename n2)
              (parse_value value)
        | ('v' | 'V'), n1 :: n2 :: value :: opts ->
            let ac =
              match parse_options line_no opts |> List.assoc_opt "ac" with
              | Some v -> parse_value v
              | None -> 0.
            in
            Circuit.add_vsource circuit ~name ~ac (rename n1) (rename n2)
              (parse_value value)
        | ('i' | 'I'), n1 :: n2 :: value :: opts ->
            let ac =
              match parse_options line_no opts |> List.assoc_opt "ac" with
              | Some v -> parse_value v
              | None -> 0.
            in
            Circuit.add_isource circuit ~name ~ac (rename n1) (rename n2)
              (parse_value value)
        | ('g' | 'G'), [ op; on; ip; inn; value ] ->
            Circuit.add_vccs circuit ~name ~out_p:(rename op)
              ~out_n:(rename on) ~in_p:(rename ip) ~in_n:(rename inn)
              (parse_value value)
        | ('m' | 'M'), d :: g :: s :: b :: model_name :: opts -> begin
            match Hashtbl.find_opt models model_name with
            | None -> fail line_no ("unknown model " ^ model_name)
            | Some model ->
                let opts = parse_options line_no opts in
                let geom key =
                  match List.assoc_opt key opts with
                  | Some v -> parse_value v
                  | None -> fail line_no ("missing " ^ key ^ " on " ^ card)
                in
                Circuit.add_mosfet circuit ~name ~d:(rename d) ~g:(rename g)
                  ~s:(rename s) ~b:(rename b) ~model ~w:(geom "w")
                  ~l:(geom "l")
          end
        | ('x' | 'X'), _ -> begin
            (* last field is the subckt name, the rest are port connections *)
            match List.rev rest with
            | [] -> fail line_no ("malformed instance: " ^ card)
            | sub_name :: rev_nodes -> begin
                match Hashtbl.find_opt subckts sub_name with
                | None -> fail line_no ("unknown subcircuit " ^ sub_name)
                | Some { ports; body } ->
                    let nodes = List.rev rev_nodes in
                    if List.length nodes <> List.length ports then
                      fail line_no
                        (Printf.sprintf "%s: %d connections for %d ports" card
                           (List.length nodes) (List.length ports));
                    (* ports bind to the (renamed) outer nodes; everything
                       else becomes instance-local *)
                    let binding =
                      List.map2 (fun p n -> (p, rename n)) ports nodes
                    in
                    let inner_prefix = prefix ^ card ^ "." in
                    let rename' node_name =
                      if node_name = "0" || node_name = "gnd" || node_name = "GND"
                      then node_name
                      else
                        match List.assoc_opt node_name binding with
                        | Some outer -> outer
                        | None -> inner_prefix ^ node_name
                    in
                    List.iter
                      (fun (body_line, body_fields) ->
                        handle_fields ~rename:rename' ~prefix:inner_prefix
                          body_line body_fields)
                      body
              end
          end
        | _, _ -> fail line_no ("malformed card: " ^ String.concat " " fields)
      end
  in
  (* first pass: separate subcircuit definitions from top-level cards *)
  let top = ref [] in
  let pending : (string * string list * (int * string list) list ref) option ref =
    ref None
  in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      let fields = clean_fields line in
      match fields with
      | [] -> ()
      | card :: rest -> begin
          let lower = String.lowercase_ascii card in
          match !pending with
          | Some (sub_name, ports, body) ->
              if lower = ".ends" then begin
                Hashtbl.replace subckts sub_name
                  { ports; body = List.rev !body };
                pending := None
              end
              else if lower = ".subckt" then
                fail line_no "nested .subckt definitions are not supported"
              else body := (line_no, fields) :: !body
          | None ->
              if lower = ".subckt" then begin
                match rest with
                | sub_name :: ports when ports <> [] ->
                    pending := Some (sub_name, ports, ref [])
                | _ -> fail line_no "malformed .subckt header"
              end
              else if lower = ".ends" then fail line_no ".ends without .subckt"
              else top := (line_no, fields) :: !top
        end)
    (String.split_on_char '\n' text);
  (match !pending with
  | Some (sub_name, _, _) -> fail 0 ("unterminated .subckt " ^ sub_name)
  | None -> ());
  List.iter
    (fun (line_no, fields) ->
      try handle_fields ~rename:Fun.id ~prefix:"" line_no fields with
      | Parse_error _ as e -> raise e
      | Failure message -> fail line_no message)
    (List.rev !top);
  (circuit, List.rev !analyses)

let parse text = fst (parse_with_analyses text)

let format_value v =
  (* compact engineering rendering for printing *)
  let abs = Float.abs v in
  if v = 0. then "0"
  else begin
    let scaled, suffix =
      if abs >= 1e12 then (v /. 1e12, "t")
      else if abs >= 1e6 then (v /. 1e6, "meg")
      else if abs >= 1e3 then (v /. 1e3, "k")
      else if abs >= 1. then (v, "")
      else if abs >= 1e-3 then (v /. 1e-3, "m")
      else if abs >= 1e-6 then (v /. 1e-6, "u")
      else if abs >= 1e-9 then (v /. 1e-9, "n")
      else if abs >= 1e-12 then (v /. 1e-12, "p")
      else (v /. 1e-15, "f")
    in
    Printf.sprintf "%.6g%s" scaled suffix
  end

(* The parser derives the element type from the card's first letter, so a
   device whose name does not start with its type letter (e.g. the flattened
   "x1.M1") must be printed with an explicit type prefix. *)
let card_name type_char name =
  if name <> "" && Char.lowercase_ascii name.[0] = type_char then name
  else Printf.sprintf "%c_%s" (Char.uppercase_ascii type_char) name

let to_string circuit =
  let buf = Buffer.create 1024 in
  let models = ref [] in
  let model_name m =
    match List.assq_opt m !models with
    | Some name -> name
    | None -> begin
        (* structural match: reuse a card for identical parameter sets *)
        match List.find_opt (fun (m', _) -> m' = m) !models with
        | Some (_, name) -> name
        | None ->
            let name = Printf.sprintf "mod%d" (List.length !models + 1) in
            models := (m, name) :: !models;
            name
      end
  in
  let node = Circuit.node_name circuit in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let body = Buffer.create 1024 in
  let body_line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string body (s ^ "\n")) fmt
  in
  Array.iter
    (fun dev ->
      match dev with
      | Device.Resistor { name; n1; n2; ohms } ->
          body_line "%s %s %s %s" (card_name 'r' name) (node n1) (node n2)
            (format_value ohms)
      | Device.Capacitor { name; n1; n2; farads } ->
          body_line "%s %s %s %s" (card_name 'c' name) (node n1) (node n2)
            (format_value farads)
      | Device.Vsource { name; npos; nneg; dc; ac; wave = _ } ->
          let name = card_name 'v' name in
          if ac = 0. then
            body_line "%s %s %s %s" name (node npos) (node nneg) (format_value dc)
          else
            body_line "%s %s %s %s ac=%s" name (node npos) (node nneg)
              (format_value dc) (format_value ac)
      | Device.Isource { name; npos; nneg; dc; ac; wave = _ } ->
          let name = card_name 'i' name in
          if ac = 0. then
            body_line "%s %s %s %s" name (node npos) (node nneg) (format_value dc)
          else
            body_line "%s %s %s %s ac=%s" name (node npos) (node nneg)
              (format_value dc) (format_value ac)
      | Device.Vccs { name; out_p; out_n; in_p; in_n; gm } ->
          body_line "%s %s %s %s %s %s" (card_name 'g' name) (node out_p)
            (node out_n) (node in_p) (node in_n) (format_value gm)
      | Device.Mosfet { name; d; g; s; b; model; w; l } ->
          body_line "%s %s %s %s %s %s w=%s l=%s" (card_name 'm' name) (node d)
            (node g) (node s) (node b) (model_name model) (format_value w)
            (format_value l))
    (Circuit.devices circuit);
  line "* netlist generated by yieldlab";
  List.iter
    (fun (m, name) ->
      let kind =
        match m.Mosfet.polarity with Mosfet.Nmos -> "nmos" | Mosfet.Pmos -> "pmos"
      in
      line
        ".model %s %s vth0=%g kp=%g gamma=%g phi=%g lambda0=%g n=%g cox=%g \
         cgso=%g cgdo=%g cj=%g cjsw=%g ext=%g"
        name kind m.Mosfet.vth0 m.Mosfet.kp m.Mosfet.gamma m.Mosfet.phi
        m.Mosfet.lambda0 m.Mosfet.n_slope m.Mosfet.cox m.Mosfet.cgso
        m.Mosfet.cgdo m.Mosfet.cj m.Mosfet.cjsw m.Mosfet.ext)
    (List.rev !models);
  Buffer.add_buffer buf body;
  List.iter
    (fun (n, v) ->
      line ".nodeset v(%s)=%s" (node n) (format_value v))
    (List.rev (Circuit.nodesets circuit));
  line ".end";
  Buffer.contents buf
