let magnitude_db z =
  let m = Complex.norm z in
  if m <= 0. then neg_infinity else 20. *. log10 m

let phase_deg z = Complex.arg z *. 180. /. Float.pi

let magnitudes_db (b : Ac.bode) = Array.map magnitude_db b.response

let phases_deg_unwrapped (b : Ac.bode) =
  let n = Array.length b.response in
  let out = Array.make n 0. in
  if n > 0 then begin
    out.(0) <- phase_deg b.response.(0);
    for i = 1 to n - 1 do
      let raw = phase_deg b.response.(i) in
      (* remove 360-degree wraps relative to the previous point *)
      let diff = raw -. out.(i - 1) in
      let wraps = Float.round (diff /. 360.) in
      out.(i) <- raw -. (360. *. wraps)
    done
  end;
  out

let dc_gain_db b =
  if Array.length b.Ac.response = 0 then invalid_arg "Measure.dc_gain_db: empty";
  magnitude_db b.Ac.response.(0)

let crossing ~xs ~ys ~level ?(log_x = true) () =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Measure.crossing: length mismatch";
  let rec scan i =
    if i >= n - 1 then None
    else if ys.(i) >= level && ys.(i + 1) < level then begin
      let y0 = ys.(i) and y1 = ys.(i + 1) in
      if y0 = y1 then Some xs.(i)
      else begin
        let t = (y0 -. level) /. (y0 -. y1) in
        if log_x then
          Some (exp (log xs.(i) +. (t *. (log xs.(i + 1) -. log xs.(i)))))
        else Some (xs.(i) +. (t *. (xs.(i + 1) -. xs.(i))))
      end
    end
    else scan (i + 1)
  in
  scan 0

let interp_at ~xs ~ys x ~log_x =
  let n = Array.length xs in
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    let rec find i = if xs.(i + 1) >= x then i else find (i + 1) in
    let i = find 0 in
    let t =
      if log_x then (log x -. log xs.(i)) /. (log xs.(i + 1) -. log xs.(i))
      else (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i))
    in
    ys.(i) +. (t *. (ys.(i + 1) -. ys.(i)))
  end

let unity_gain_freq b =
  crossing ~xs:b.Ac.freqs ~ys:(magnitudes_db b) ~level:0. ()

let phase_margin_deg b =
  match unity_gain_freq b with
  | None -> None
  | Some fu ->
      let phases = phases_deg_unwrapped b in
      let phase_u = interp_at ~xs:b.Ac.freqs ~ys:phases fu ~log_x:true in
      Some (180. +. phase_u)

let gain_margin_db b =
  let phases = phases_deg_unwrapped b in
  match crossing ~xs:b.Ac.freqs ~ys:phases ~level:(-180.) () with
  | None -> None
  | Some f180 ->
      let mag = interp_at ~xs:b.Ac.freqs ~ys:(magnitudes_db b) f180 ~log_x:true in
      Some (-.mag)

let f3db b =
  let dc = dc_gain_db b in
  crossing ~xs:b.Ac.freqs ~ys:(magnitudes_db b) ~level:(dc -. 3.) ()

let gain_at b f = interp_at ~xs:b.Ac.freqs ~ys:(magnitudes_db b) f ~log_x:true
