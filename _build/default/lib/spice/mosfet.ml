type polarity = Nmos | Pmos

type model = {
  polarity : polarity;
  vth0 : float;
  kp : float;
  gamma : float;
  phi : float;
  lambda0 : float;
  n_slope : float;
  cox : float;
  cgso : float;
  cgdo : float;
  cj : float;
  cjsw : float;
  ext : float;
}

let temperature_voltage = 0.025852

type region = Cutoff | Weak | Saturation | Triode

type op = {
  ids : float;
  gm : float;
  gds : float;
  gmb : float;
  vth : float;
  vdsat : float;
  vgs : float;
  vds : float;
  vbs : float;
  region : region;
  cgs : float;
  cgd : float;
  cdb : float;
  csb : float;
}

let region_to_string = function
  | Cutoff -> "cutoff"
  | Weak -> "weak"
  | Saturation -> "saturation"
  | Triode -> "triode"

(* softplus and its derivative, overflow-safe *)
let softplus x = if x > 40. then x else if x < -40. then exp x else log (1. +. exp x)

let sigmoid x =
  if x > 40. then 1. else if x < -40. then exp x else 1. /. (1. +. exp (-.x))

(* EKV interpolation function F(x) = ln^2(1 + e^(x/2)) and its derivative. *)
let ekv_f x =
  let s = softplus (x /. 2.) in
  s *. s

let ekv_f' x = softplus (x /. 2.) *. sigmoid (x /. 2.)

let with_deltas m ~dvth ~dkp_rel ~dlambda_rel =
  {
    m with
    vth0 = m.vth0 +. dvth;
    kp = m.kp *. (1. +. dkp_rel);
    lambda0 = m.lambda0 *. (1. +. dlambda_rel);
  }

(* Forward evaluation for vds >= 0, NMOS convention. *)
let eval_forward m ~w ~l ~vgs ~vds ~vbs =
  let vt = temperature_voltage in
  let n = m.n_slope in
  (* body effect: vbs <= 0 increases vth.  Clamp the sqrt argument so Newton
     excursions into forward body bias do not produce NaN. *)
  let sarg = Float.max 0.05 (m.phi -. vbs) in
  let vth = m.vth0 +. (m.gamma *. (sqrt sarg -. sqrt m.phi)) in
  let dvth_dvbs = -.(m.gamma /. (2. *. sqrt sarg)) in
  let lambda = m.lambda0 /. (l *. 1e6) in
  let beta = m.kp *. w /. l in
  let i0 = 2. *. n *. beta *. vt *. vt in
  let a = (vgs -. vth) /. (n *. vt) in
  let b = (vgs -. vth -. (n *. vds)) /. (n *. vt) in
  let fa = ekv_f a and fb = ekv_f b in
  let fa' = ekv_f' a and fb' = ekv_f' b in
  let clm = 1. +. (lambda *. vds) in
  let base = i0 *. (fa -. fb) in
  let ids = base *. clm in
  (* d a / d vgs = 1/(n vt); d b / d vgs = 1/(n vt); d b / d vds = -1/vt *)
  let gm = i0 *. (fa' -. fb') /. (n *. vt) *. clm in
  let gds = (i0 *. fb' /. vt *. clm) +. (base *. lambda) in
  (* vth depends on vbs: d ids/d vbs = d ids/d vth * dvth/dvbs, and
     d ids/d vth = -gm *)
  let gmb = -.gm *. dvth_dvbs in
  let vdsat = Float.max (2. *. vt) ((vgs -. vth) /. n) in
  let region =
    if vgs -. vth < -3. *. n *. vt then Cutoff
    else if vgs -. vth < 3. *. n *. vt then Weak
    else if vds > vdsat then Saturation
    else Triode
  in
  (ids, gm, gds, gmb, vth, vdsat, region)

let eval m ~w ~l ~vgs ~vds ~vbs =
  if w <= 0. || l <= 0. then invalid_arg "Mosfet.eval: non-positive geometry";
  let reversed = vds < 0. in
  (* in reverse operation the physical source is the drain terminal *)
  let vgs', vds', vbs' =
    if reversed then (vgs -. vds, -.vds, vbs -. vds) else (vgs, vds, vbs)
  in
  let ids, gm, gds, gmb, vth, vdsat, region =
    eval_forward m ~w ~l ~vgs:vgs' ~vds:vds' ~vbs:vbs'
  in
  let ids, gm, gds, gmb =
    if reversed then begin
      (* I(vgs,vds) = -I'(vgs-vds, -vds); chain rule for the derivatives:
         dI/dvgs = -gm', dI/dvds = gm' + gds' + gmb', dI/dvbs = -gmb' *)
      (-.ids, -.gm, gm +. gds +. gmb, -.gmb)
    end
    else (ids, gm, gds, gmb)
  in
  (* Meyer-style capacitances, blended smoothly across the region
     boundaries: a discrete switch makes poles (and hence phase margin) jump
     discontinuously under Monte Carlo perturbations of devices biased near
     a boundary.  [inversion] fades the intrinsic channel capacitance in as
     the channel forms; [saturated] slides the gate capacitance between the
     triode split (1/2, 1/2) and the saturation split (2/3, 0). *)
  let cox_total = m.cox *. w *. l in
  let vt = temperature_voltage in
  let inversion = sigmoid ((vgs' -. vth) /. (2. *. m.n_slope *. vt)) in
  let saturated = sigmoid ((vds' -. vdsat) /. (2. *. vt)) in
  let cgs_i =
    cox_total *. inversion
    *. ((2. /. 3. *. saturated) +. (0.5 *. (1. -. saturated)))
  in
  let cgd_i = cox_total *. inversion *. 0.5 *. (1. -. saturated) in
  let cgs_f = cgs_i +. (m.cgso *. w) in
  let cgd_f = cgd_i +. (m.cgdo *. w) in
  let cgs, cgd = if reversed then (cgd_f, cgs_f) else (cgs_f, cgd_f) in
  let cjunction = (m.cj *. w *. m.ext) +. (m.cjsw *. ((2. *. m.ext) +. w)) in
  {
    ids;
    gm;
    gds;
    gmb;
    vth;
    vdsat;
    vgs;
    vds;
    vbs;
    region;
    cgs;
    cgd;
    cdb = cjunction;
    csb = cjunction;
  }
