(** SPICE-like netlist text format.

    The proposed algorithm's first step is "netlist and objective function
    generation"; this module gives circuits a concrete textual form, with a
    parser for tests and user-supplied topologies.

    Supported cards (case-insensitive element letters, [*] comments,
    engineering suffixes f p n u m k meg g t):

    {v
    .model <name> nmos|pmos vth0=.. kp=.. gamma=.. phi=.. lambda0=.. n=..
                  cox=.. cgso=.. cgdo=.. cj=.. cjsw=.. ext=..
    R<id> n1 n2 <ohms>
    C<id> n1 n2 <farads>
    V<id> n+ n- <dc> [ac=<mag>]
    I<id> n+ n- <dc> [ac=<mag>]
    G<id> out+ out- in+ in- <gm>
    M<id> d g s b <model> w=<m> l=<m>
    .subckt <name> <port>...
      <cards>
    .ends
    X<id> <node>... <subckt-name>
    .nodeset v(<node>)=<volts>
    .op
    .ac dec <points-per-decade> <f_lo> <f_hi> <out-node>
    .tran <dt> <t_stop> <out-node>
    .dc <source> <start> <stop> <step> <out-node>
    .end
    v}

    Subcircuits are expanded (flattened) at parse time: internal nodes and
    device names of instance [X1] of subckt [amp] appear as [X1.<name>].
    Nested subcircuit definitions are not supported; instantiating a subckt
    from inside another is. *)

exception Parse_error of { line : int; message : string }

type analysis =
  | Op  (** [.op] — DC operating point *)
  | Ac_analysis of { per_decade : int; f_lo : float; f_hi : float; out : string }
      (** [.ac dec <pts> <f_lo> <f_hi> <node>] *)
  | Tran_analysis of { dt : float; t_stop : float; out : string }
      (** [.tran <dt> <t_stop> <node>] *)
  | Dc_analysis of {
      source : string;
      start : float;
      stop : float;
      step : float;
      out : string;
    }  (** [.dc <source> <start> <stop> <step> <node>] *)

val parse_value : string -> float
(** Engineering-notation scalar ("10k", "3.3", "120p", "2meg").
    @raise Failure on malformed input. *)

val parse : string -> Circuit.t
(** @raise Parse_error with a line number on malformed input.  Analysis
    cards are accepted and ignored; use {!parse_with_analyses} to get
    them. *)

val parse_with_analyses : string -> Circuit.t * analysis list
(** Like {!parse} but also returns the analysis cards, in order.  Analysis
    cards are only allowed at the top level (not inside [.subckt]). *)

val to_string : Circuit.t -> string
(** Render a circuit back to netlist text.  MOS models are deduplicated and
    emitted as [.model] cards named [mod1], [mod2], ... *)
