lib/spice/netlist.mli: Circuit
