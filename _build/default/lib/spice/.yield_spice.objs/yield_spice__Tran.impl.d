lib/spice/tran.ml: Array Circuit Dcop Device Float List Mna Mosfet Printf Yield_numeric
