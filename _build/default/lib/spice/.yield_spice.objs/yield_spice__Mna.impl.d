lib/spice/mna.ml: Array Circuit Complex Device Hashtbl List Mosfet Yield_numeric
