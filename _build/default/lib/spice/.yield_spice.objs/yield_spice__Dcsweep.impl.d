lib/spice/dcsweep.ml: Array Circuit Dcop Device Float Mna
