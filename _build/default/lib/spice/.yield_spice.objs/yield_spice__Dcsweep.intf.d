lib/spice/dcsweep.mli: Circuit Dcop Device Mna
