lib/spice/circuit.ml: Array Device Hashtbl List
