lib/spice/ac.ml: Array Circuit Complex Dcop Device Float Mna Stdlib Yield_numeric
