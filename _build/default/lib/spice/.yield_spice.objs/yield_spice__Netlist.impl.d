lib/spice/netlist.ml: Array Buffer Char Circuit Device Float Fun Hashtbl List Mosfet Printf String
