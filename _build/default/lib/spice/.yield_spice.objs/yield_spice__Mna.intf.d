lib/spice/mna.mli: Circuit Complex Device Mosfet Yield_numeric
