lib/spice/tran.mli: Circuit Dcop Device Mna Stdlib
