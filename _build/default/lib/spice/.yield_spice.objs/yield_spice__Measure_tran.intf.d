lib/spice/measure_tran.mli:
