lib/spice/dcop.mli: Circuit Device Format Mna Mosfet Yield_numeric
