lib/spice/device.ml: Float Mosfet
