lib/spice/noise.ml: Ac Array Circuit Complex Dcop Device Float List Mna Mosfet Yield_numeric
