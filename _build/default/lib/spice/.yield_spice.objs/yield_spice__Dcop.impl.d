lib/spice/dcop.ml: Array Circuit Device Float Format List Mna Mosfet String Yield_numeric
