lib/spice/measure.mli: Ac Complex
