lib/spice/measure.ml: Ac Array Complex Float
