lib/spice/mosfet.ml: Float
