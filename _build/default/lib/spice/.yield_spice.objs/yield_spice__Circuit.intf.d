lib/spice/circuit.mli: Device Mosfet
