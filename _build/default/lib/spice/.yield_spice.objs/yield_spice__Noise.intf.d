lib/spice/noise.mli: Ac Circuit Dcop Device
