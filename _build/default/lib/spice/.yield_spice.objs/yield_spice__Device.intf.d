lib/spice/device.mli: Mosfet
