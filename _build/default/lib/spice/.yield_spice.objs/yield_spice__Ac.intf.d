lib/spice/ac.mli: Circuit Complex Dcop Device
