lib/spice/mosfet.mli:
