lib/spice/measure_tran.ml: Array Float Stdlib
