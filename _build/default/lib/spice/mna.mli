(** Modified nodal analysis: system layout and matrix stamping.

    Unknown vector layout: entries [0 .. n_nodes-1] are the voltages of nodes
    [1 .. n_nodes] (ground is eliminated), followed by one branch current per
    voltage source, in device order. *)

type layout

val layout : Circuit.t -> layout

val size : layout -> int

val n_nodes : layout -> int

val branch_index : layout -> string -> int
(** Unknown-vector index of the branch current of the named voltage source.
    @raise Not_found if there is no such source. *)

val voltage : Yield_numeric.Vec.t -> Device.node -> float
(** Node voltage under the layout convention; ground reads 0. *)

val assemble_dc :
  Circuit.t -> layout -> x:Yield_numeric.Vec.t -> source_scale:float -> gmin:float ->
  Yield_numeric.Mat.t * Yield_numeric.Vec.t
(** Newton-linearised DC system around the guess [x]: returns [(g, rhs)] such
    that solving [g x' = rhs] yields the next iterate.  [source_scale] scales
    all independent sources (for source-stepping homotopy); [gmin] is a
    conductance added from every node to ground. *)

val mos_operating_points :
  Circuit.t -> x:Yield_numeric.Vec.t -> (string * Mosfet.op) list
(** Device-convention operating point of every MOSFET at the solution [x]
    (PMOS currents and voltages reported NMOS-normalised, as produced by
    {!Mosfet.eval} on the flipped bias). *)

(** Low-level stamping primitives, shared with the transient engine. *)

val stamp_conductance : Yield_numeric.Mat.t -> Device.node -> Device.node -> float -> unit
(** Two-terminal conductance between two nodes (ground rows skipped). *)

val stamp_transconductance :
  Yield_numeric.Mat.t -> out_p:Device.node -> out_n:Device.node ->
  in_p:Device.node -> in_n:Device.node -> float -> unit
(** Current [g * v(in_p, in_n)] leaving [out_p], entering [out_n]. *)

val stamp_branch :
  Yield_numeric.Mat.t -> layout -> name:string -> npos:Device.node ->
  nneg:Device.node -> unit
(** Voltage-source branch rows/columns (without the RHS value). *)

val inject : Yield_numeric.Vec.t -> Device.node -> float -> unit
(** Add a current injection into a node's KCL right-hand side. *)

val stamp_mosfet_dc :
  Yield_numeric.Mat.t -> Yield_numeric.Vec.t -> x:Yield_numeric.Vec.t ->
  d:Device.node -> g:Device.node -> s:Device.node -> b:Device.node ->
  model:Mosfet.model -> w:float -> l:float -> Mosfet.op
(** Newton-linearised MOSFET stamp around the guess [x]; returns the
    normalised operating point used. *)

val assemble_ac :
  Circuit.t -> layout -> ops:(string -> Mosfet.op) ->
  Yield_numeric.Mat.t * Yield_numeric.Mat.t * Complex.t array
(** Small-signal system pieces: [(g, c, rhs)] with the full system
    [ (g + jw c) x = rhs ], where [rhs] carries the AC magnitudes of the
    independent sources.  [ops] maps MOSFET names to their DC operating
    points. *)
