(** The variation model (§3.4): per-Pareto-point Monte Carlo spreads stored
    as the paper's [gain_delta.tbl] / [pm_delta.tbl] one-input tables. *)

type point = {
  gain_db : float;  (** nominal gain of the Pareto design *)
  pm_deg : float;
  dgain_pct : float;  (** Table 2's dGain: 3-sigma spread as % of nominal *)
  dpm_pct : float;
  mc_samples : int;  (** successful MC samples behind the estimate *)
}

type t

val create : ?control:string -> ?bins:int -> point array -> t
(** Default control ["3E"] (cubic, no extrapolation).

    Each table's knots are denoised before the spline fit: points are
    aggregated into at most [bins] (default 24) equal-population bins along
    that table's own abscissa (gain for the dGain table, PM for the dPM
    table), and knots closer than 1e-3 of the span are pooled.  Monte Carlo
    spread estimates carry sampling noise, and a cubic spline through
    hundreds of noisy, nearly-coincident abscissae rings without bound;
    binning keeps the ["3E"] semantics on a stable knot set.
    @raise Invalid_argument with fewer than two points. *)

val points : t -> point array
(** The input points, sorted by gain. *)

val size : t -> int

val gain_domain : t -> float * float
(** Query range of the dGain table. *)

val pm_domain : t -> float * float
(** Query range of the dPM table. *)

val dgain_at : t -> gain_db:float -> float
(** [gain_delta = $table_model(gain, "gain_delta.tbl", "3E")].  Spread
    estimates are non-negative by construction, so interpolation undershoot
    is clamped at zero.
    @raise Yield_table.Table1d.Out_of_range outside the sampled gains. *)

val dpm_at : t -> pm_deg:float -> float
(** [pm_delta = $table_model(pm, "pm_delta.tbl", "3E")]. *)

val to_table : t -> Yield_table.Tbl_io.table
(** Columns: gain pm dgain_pct dpm_pct mc_samples. *)

val of_table : ?control:string -> Yield_table.Tbl_io.table -> t
