lib/behavioural/yield_target.ml: Macromodel Yield_stats
