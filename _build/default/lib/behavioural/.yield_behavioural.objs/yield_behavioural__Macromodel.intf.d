lib/behavioural/macromodel.mli: Perf_model Var_model Yield_circuits Yield_spice
