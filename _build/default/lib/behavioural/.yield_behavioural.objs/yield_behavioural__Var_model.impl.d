lib/behavioural/var_model.ml: Array Float Fun List Yield_table
