lib/behavioural/verilog_a.mli: Macromodel Yield_table
