lib/behavioural/perf_model.ml: Array Float List Yield_table
