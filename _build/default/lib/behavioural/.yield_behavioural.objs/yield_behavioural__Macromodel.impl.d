lib/behavioural/macromodel.ml: Array Complex Float Perf_model Printf Var_model Yield_circuits Yield_spice Yield_table
