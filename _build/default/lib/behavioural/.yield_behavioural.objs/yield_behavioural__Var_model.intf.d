lib/behavioural/var_model.mli: Yield_table
