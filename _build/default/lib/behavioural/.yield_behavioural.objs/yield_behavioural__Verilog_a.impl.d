lib/behavioural/verilog_a.ml: Array Buffer Filename Fun List Macromodel Perf_model Printf Var_model Yield_table
