lib/behavioural/yield_target.mli: Macromodel
