lib/behavioural/perf_model.mli: Yield_table
