(** The performance model (§3.3): the Pareto-optimal designs stored as
    look-up tables from performance values to designable parameters.

    Each Pareto point carries its objectives (gain, phase margin), its eight
    designable parameters, and the auxiliary small-signal quantities the
    behavioural realisation needs (output resistance, unity-gain frequency).
    Parameters are interpolated along the front curve with cubic splines and
    no extrapolation — the paper's ["3E,3E"] two-input [$table_model]s. *)

type point = {
  gain_db : float;
  pm_deg : float;
  params : float array;  (** 8 designable parameters, metres *)
  rout : float;
  unity_gain_hz : float;
}

type t

val create : ?control:string -> point array -> t
(** Builds the lookup tables; points are sorted by gain and coincident
    duplicates merged.  Default control ["3E"].
    @raise Invalid_argument with fewer than 2 distinct points. *)

val size : t -> int
(** Number of distinct table points. *)

val points : t -> point array
(** The (sorted, deduplicated) model points. *)

val gain_range : t -> float * float

val pm_range : t -> float * float

val pm_at_gain : t -> float -> float
(** The front curve itself: phase margin attainable at a given gain.
    @raise Yield_table.Table1d.Out_of_range outside the model range. *)

val lookup : ?guard:bool -> t -> gain_db:float -> pm_deg:float -> point
(** The [lp_i = $table_model(gain_prop, pm_prop, ...)] step: interpolate the
    design for a performance query, projecting onto the front curve.

    Parameters are interpolated between the two bracketing Pareto designs
    only when those designs are parametrically close (same design family);
    across a family boundary the lookup snaps to the nearer design instead —
    blending unrelated designs realises neither performance.  The returned
    point's [gain_db]/[pm_deg] are the table's values at the point actually
    used, which is what the behavioural model claims for the design.
    [guard:false] disables the family guard and always interpolates (the
    paper's raw [$table_model] behaviour).
    @raise Yield_table.Table1d.Out_of_range outside the model range. *)

val to_table : t -> Yield_table.Tbl_io.table
(** Columns: gain pm w1 l1 w2 l2 w3 l3 w4 l4 rout fu. *)

val of_table : ?control:string -> Yield_table.Tbl_io.table -> t
(** @raise Not_found if required columns are missing. *)
