(** Yield targeting (§4.4, Table 3): turn a performance specification into
    the design that achieves it with maximum (nominally 100 %) parametric
    yield, by inflating the specification with the interpolated variation
    before the parameter lookup. *)

type spec = {
  min_gain_db : float;  (** e.g. "gain > 50 dB" *)
  min_pm_deg : float;  (** e.g. "PM > 74 degrees" *)
}

type plan = {
  spec : spec;
  proposal : Macromodel.proposal;
      (** variation lookups and inflated targets (Table 3's columns) *)
  worst_case_gain_db : float;
      (** proposed gain minus its variation envelope.  With the paper's
          multiplicative inflation [x (1 + d/100)] this sits within
          [spec * (d/100)^2] of the specification (the paper's own Table 3
          worst case, 50.0 dB from a 50 dB spec, carries the same
          second-order term). *)
  worst_case_pm_deg : float;
}

val plan : Macromodel.t -> spec -> (plan, string) result
(** Table 3's procedure at the spec point. *)

val meets : spec -> gain_db:float -> pm_deg:float -> bool

val predicted_yield : plan -> float
(** 1.0 when the worst-case corners still meet the spec, else the normal-
    tail estimate of the failing objective (the variation envelope is a
    3-sigma figure). *)
