(** Verilog-A emission: render the combined behavioural model as the
    Verilog-A module of the paper's §4.4 listing, together with the [.tbl]
    data files its [$table_model] calls reference.

    The emitted module is textual output for use in a Verilog-A capable
    simulator; this library's own simulations use {!Macromodel} directly. *)

val module_text : ?name:string -> control:string -> unit -> string
(** The module source (default name ["ota_behavioural"]): variation lookup,
    performance proposal, parameter interpolation and the output stage
    [V(out) <+ -gain * V(inp) - I(out) * ro], mirroring the paper line for
    line.  [control] is the table-model control string (["3E"]). *)

val data_files : Macromodel.t -> (string * Yield_table.Tbl_io.table) list
(** The tables the module references: [gain_delta.tbl], [pm_delta.tbl] and
    [lp1_data.tbl] .. [lp8_data.tbl] (performance to designable-parameter
    maps), plus [ro_data.tbl] for the output stage. *)

val save : ?name:string -> ?control:string -> Macromodel.t -> dir:string -> string list
(** Write the module ([<name>.va]) and every data file into [dir]; returns
    the paths written. *)
