type spec = { min_gain_db : float; min_pm_deg : float }

type plan = {
  spec : spec;
  proposal : Macromodel.proposal;
  worst_case_gain_db : float;
  worst_case_pm_deg : float;
}

let plan model spec =
  match
    Macromodel.propose model ~gain_db:spec.min_gain_db ~pm_deg:spec.min_pm_deg
  with
  | Error _ as e -> e
  | Ok proposal ->
      (* the spread is symmetric: the proposed (inflated) performance may
         fall by its own variation and must still clear the spec *)
      let wc_gain =
        proposal.Macromodel.proposed_gain_db
        *. (1. -. (proposal.Macromodel.gain_delta_pct /. 100.))
      in
      let wc_pm =
        proposal.Macromodel.proposed_pm_deg
        *. (1. -. (proposal.Macromodel.pm_delta_pct /. 100.))
      in
      Ok
        {
          spec;
          proposal;
          worst_case_gain_db = wc_gain;
          worst_case_pm_deg = wc_pm;
        }

let meets spec ~gain_db ~pm_deg =
  gain_db >= spec.min_gain_db && pm_deg >= spec.min_pm_deg

(* The variation envelope is 3 sigma; if the worst case clears the spec the
   normal-tail failure probability is below phi(-3) per objective. *)
let predicted_yield p =
  let tail margin_sigma =
    Yield_stats.Dist.normal_cdf ~mean:0. ~sigma:1. margin_sigma
  in
  let sigma_gain =
    p.proposal.Macromodel.proposed_gain_db
    *. p.proposal.Macromodel.gain_delta_pct /. 100. /. 3.
  in
  let sigma_pm =
    p.proposal.Macromodel.proposed_pm_deg
    *. p.proposal.Macromodel.pm_delta_pct /. 100. /. 3.
  in
  let z_gain =
    if sigma_gain <= 0. then infinity
    else
      (p.proposal.Macromodel.proposed_gain_db -. p.spec.min_gain_db)
      /. sigma_gain
  in
  let z_pm =
    if sigma_pm <= 0. then infinity
    else
      (p.proposal.Macromodel.proposed_pm_deg -. p.spec.min_pm_deg) /. sigma_pm
  in
  tail z_gain *. tail z_pm
