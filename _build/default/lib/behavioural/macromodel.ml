module Circuit = Yield_spice.Circuit
module Ac = Yield_spice.Ac
module Table1d = Yield_table.Table1d
module Filter = Yield_circuits.Filter

type t = { perf : Perf_model.t; var : Var_model.t }

let create perf var = { perf; var }

let perf_model t = t.perf

let var_model t = t.var

type proposal = {
  requested_gain_db : float;
  requested_pm_deg : float;
  gain_delta_pct : float;
  pm_delta_pct : float;
  proposed_gain_db : float;
  proposed_pm_deg : float;
  design : Perf_model.point;
}

let propose t ~gain_db ~pm_deg =
  match
    let gain_delta_pct = Var_model.dgain_at t.var ~gain_db in
    let pm_delta_pct = Var_model.dpm_at t.var ~pm_deg in
    (* the Verilog-A module body: prop = ((delta/100)*x) + x *)
    let proposed_gain_db = (gain_delta_pct /. 100. *. gain_db) +. gain_db in
    let proposed_pm_deg = (pm_delta_pct /. 100. *. pm_deg) +. pm_deg in
    let design =
      Perf_model.lookup t.perf ~gain_db:proposed_gain_db ~pm_deg:proposed_pm_deg
    in
    {
      requested_gain_db = gain_db;
      requested_pm_deg = pm_deg;
      gain_delta_pct;
      pm_delta_pct;
      proposed_gain_db;
      proposed_pm_deg;
      design;
    }
  with
  | proposal -> Ok proposal
  | exception Table1d.Out_of_range { value; lo; hi } ->
      Error
        (Printf.sprintf
           "macromodel: %g outside the model range [%g, %g] (no extrapolation)"
           value lo hi)

let amp_of_design (design : Perf_model.point) =
  { Filter.gain_db = design.Perf_model.gain_db; rout = design.Perf_model.rout }

let add_to_circuit t circuit ~name ~gain_db ~pm_deg ~inp ~out =
  match propose t ~gain_db ~pm_deg with
  | Error _ as e -> e
  | Ok proposal ->
      let a = 10. ** (proposal.design.Perf_model.gain_db /. 20.) in
      let ro = proposal.design.Perf_model.rout in
      Circuit.add_vccs circuit ~name:(name ^ ".G") ~out_p:out ~out_n:"0"
        ~in_p:inp ~in_n:"0" (a /. ro);
      Circuit.add_resistor circuit ~name:(name ^ ".RO") out "0" ro;
      Ok proposal

let bode ?(f_lo = 10.) ?(f_hi = 1e9) ?(per_decade = 10) ~gain_db ~rout
    ~load_cap () =
  let freqs = Ac.default_freqs ~per_decade ~f_lo ~f_hi () in
  let a = 10. ** (gain_db /. 20.) in
  let fp = 1. /. (2. *. Float.pi *. rout *. load_cap) in
  let response =
    Array.map
      (fun f ->
        (* A / (1 + j f/fp): the single dominant pole from ro and the load.
           Reported non-inverting to match the testbench convention (the
           transistor measurement drives the non-inverting input), so the
           phase-margin arithmetic applies directly. *)
        Complex.div
          { Complex.re = a; im = 0. }
          { Complex.re = 1.; im = f /. fp })
      freqs
  in
  { Ac.freqs; response }
