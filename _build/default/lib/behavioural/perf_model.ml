module Curve = Yield_table.Curve
module Control = Yield_table.Control
module Table1d = Yield_table.Table1d
module Tbl_io = Yield_table.Tbl_io

type point = {
  gain_db : float;
  pm_deg : float;
  params : float array;
  rout : float;
  unity_gain_hz : float;
}

let n_params = 8

let param_column_names = [| "w1"; "l1"; "w2"; "l2"; "w3"; "l3"; "w4"; "l4" |]

type t = {
  points : point array;  (* sorted by gain, deduplicated *)
  curve : Curve.t;  (* (gain, pm) -> params/rout/fu columns *)
  pm_of_gain : Table1d.t;
}

let create ?(control = "3E") points =
  Array.iter
    (fun p ->
      if Array.length p.params <> n_params then
        invalid_arg "Perf_model.create: need 8 parameters per point")
    points;
  let sorted = Array.copy points in
  Array.sort
    (fun a b ->
      match Float.compare a.gain_db b.gain_db with
      | 0 -> Float.compare a.pm_deg b.pm_deg
      | c -> c)
    sorted;
  (* merge coincident performance points (duplicate GA individuals) *)
  let deduped = ref [] in
  Array.iter
    (fun p ->
      match !deduped with
      | q :: _ when q.gain_db = p.gain_db && q.pm_deg = p.pm_deg -> ()
      | _ -> deduped := p :: !deduped)
    sorted;
  let points = Array.of_list (List.rev !deduped) in
  if Array.length points < 2 then
    invalid_arg "Perf_model.create: need at least two distinct points";
  let axis =
    match Control.parse control with
    | a :: _ -> a
    | [] -> Control.default_axis
  in
  let inputs = Array.map (fun p -> [| p.gain_db; p.pm_deg |]) points in
  let columns =
    List.init n_params (fun j ->
        (param_column_names.(j), Array.map (fun p -> p.params.(j)) points))
    @ [
        ("rout", Array.map (fun p -> p.rout) points);
        ("fu", Array.map (fun p -> p.unity_gain_hz) points);
        (* the performance coordinates themselves, so a lookup can report
           the performance of the table point it actually used *)
        ("gain", Array.map (fun p -> p.gain_db) points);
        ("pm", Array.map (fun p -> p.pm_deg) points);
      ]
  in
  let curve = Curve.create ~control:axis ~inputs ~columns () in
  let pm_of_gain =
    Table1d.of_unsorted ~control:axis
      (Array.map (fun p -> (p.gain_db, p.pm_deg)) points)
  in
  { points; curve; pm_of_gain }

let size t = Array.length t.points

let points t = Array.copy t.points

let gain_range t =
  let n = Array.length t.points in
  (t.points.(0).gain_db, t.points.(n - 1).gain_db)

let pm_range t =
  Array.fold_left
    (fun (lo, hi) p -> (Float.min lo p.pm_deg, Float.max hi p.pm_deg))
    (infinity, neg_infinity) t.points

let pm_at_gain t gain = Table1d.eval t.pm_of_gain gain

(* Table 1 spans, used to normalise parameter distances between adjacent
   front designs. *)
let param_spans = [| 50e-6; 3.65e-6; 50e-6; 3.65e-6; 50e-6; 3.65e-6; 50e-6; 3.65e-6 |]

let columns_at t arc =
  let get name = Curve.eval_at_arc t.curve name arc in
  ( Array.map get param_column_names,
    get "rout",
    get "fu" )

(* Interpolating designable parameters between two Pareto designs is only
   meaningful when the two designs are parametrically close; a Pareto front
   stitches together unrelated design "families", and blending across a
   family boundary yields a design realising neither performance.  When the
   bracketing knots differ by more than [snap_threshold] (rms of the
   Table 1-normalised parameter differences), snap to the nearer knot. *)
let snap_threshold = 0.15

let lookup ?(guard = true) t ~gain_db ~pm_deg =
  let q = [| gain_db; pm_deg |] in
  let arc, _distance = Curve.project t.curve q in
  let arcs = Curve.knot_arcs t.curve in
  let i, j, u = Curve.bracket t.curve arc in
  let params_i, _, _ = columns_at t arcs.(i) in
  let params_j, _, _ = columns_at t arcs.(j) in
  let family_distance =
    let acc = ref 0. in
    Array.iteri
      (fun k a ->
        let d = (a -. params_j.(k)) /. param_spans.(k) in
        acc := !acc +. (d *. d))
      params_i;
    sqrt (!acc /. float_of_int (Array.length params_i))
  in
  let arc_used =
    if (not guard) || family_distance <= snap_threshold then arc
    else begin
      (* snapping must not betray the caller's requirement: prefer the
         bracketing design that meets the requested (gain, pm); fall back to
         the nearer one when neither or both do *)
      let meets a =
        Curve.eval_at_arc t.curve "gain" a >= gain_db -. 1e-9
        && Curve.eval_at_arc t.curve "pm" a >= pm_deg -. 1e-9
      in
      match (meets arcs.(i), meets arcs.(j)) with
      | true, false -> arcs.(i)
      | false, true -> arcs.(j)
      | true, true -> if u < 0.5 then arcs.(i) else arcs.(j)
      | false, false ->
          (* the request is off the front; keep at least the gain
             requirement (the paper's primary spec) when one bracket can *)
          let gain_at a = Curve.eval_at_arc t.curve "gain" a in
          if gain_at arcs.(j) >= gain_db -. 1e-9 then arcs.(j)
          else if gain_at arcs.(i) >= gain_db -. 1e-9 then arcs.(i)
          else if u < 0.5 then arcs.(i)
          else arcs.(j)
    end
  in
  let params, rout, fu = columns_at t arc_used in
  (* performance read back from the table at the point actually used *)
  let gain_used = Curve.eval_at_arc t.curve "gain" arc_used in
  let pm_used = Curve.eval_at_arc t.curve "pm" arc_used in
  {
    gain_db = gain_used;
    pm_deg = pm_used;
    params;
    rout;
    unity_gain_hz = fu;
  }

let to_table t =
  let columns =
    Array.append [| "gain"; "pm" |] (Array.append param_column_names [| "rout"; "fu" |])
  in
  let rows =
    Array.map
      (fun p ->
        Array.concat
          [ [| p.gain_db; p.pm_deg |]; p.params; [| p.rout; p.unity_gain_hz |] ])
      t.points
  in
  Tbl_io.create ~columns ~rows

let of_table ?control table =
  let gain = Tbl_io.column table "gain" in
  let pm = Tbl_io.column table "pm" in
  let params = Array.map (Tbl_io.column table) param_column_names in
  let rout = Tbl_io.column table "rout" in
  let fu = Tbl_io.column table "fu" in
  let points =
    Array.init (Array.length gain) (fun i ->
        {
          gain_db = gain.(i);
          pm_deg = pm.(i);
          params = Array.map (fun col -> col.(i)) params;
          rout = rout.(i);
          unity_gain_hz = fu.(i);
        })
  in
  create ?control points
