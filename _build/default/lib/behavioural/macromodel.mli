(** The combined performance + variation behavioural model — the OCaml
    equivalent of the paper's §4.4 Verilog-A module.

    Given a requested performance, the model:
    + looks up the expected variation at that performance
      ([gain_delta]/[pm_delta] tables),
    + inflates the request to the {e proposed} performance that still meets
      it at the variation extreme
      ([gain_prop = gain + gain*delta/100], likewise for PM),
    + interpolates the designable parameters realising the proposal
      ([lp_i] tables), and
    + provides the output-stage realisation
      [V(out) <+ -A*V(inp) - I(out)*ro] for system-level simulation. *)

type t

val create : Perf_model.t -> Var_model.t -> t

val perf_model : t -> Perf_model.t

val var_model : t -> Var_model.t

type proposal = {
  requested_gain_db : float;
  requested_pm_deg : float;
  gain_delta_pct : float;  (** interpolated variation at the request *)
  pm_delta_pct : float;
  proposed_gain_db : float;  (** the inflated targets *)
  proposed_pm_deg : float;
  design : Perf_model.point;  (** parameters realising the proposal *)
}

val propose : t -> gain_db:float -> pm_deg:float -> (proposal, string) result
(** Table 3's procedure.  [Error] when the request or its inflation falls
    outside the model tables (no extrapolation, per the ["3E"] controls). *)

val amp_of_design : Perf_model.point -> Yield_circuits.Filter.amp
(** The behavioural amplifier (gain + output resistance) for the filter
    application. *)

val add_to_circuit :
  t -> Yield_spice.Circuit.t -> name:string -> gain_db:float -> pm_deg:float ->
  inp:string -> out:string -> (proposal, string) result
(** Instantiate the behavioural OTA output stage into a circuit: a VCCS of
    [A/ro] with a shunt [ro], per the Verilog-A listing. *)

val bode :
  ?f_lo:float -> ?f_hi:float -> ?per_decade:int ->
  gain_db:float -> rout:float -> load_cap:float -> unit -> Yield_spice.Ac.bode
(** The behavioural model's own frequency response (single dominant pole
    from [ro] and the load): the "Verilog-A model" curve of Figure 8. *)
