module Control = Yield_table.Control
module Table1d = Yield_table.Table1d
module Tbl_io = Yield_table.Tbl_io

type point = {
  gain_db : float;
  pm_deg : float;
  dgain_pct : float;
  dpm_pct : float;
  mc_samples : int;
}

type t = {
  points : point array;
  dgain : Table1d.t;  (* gain -> dgain% *)
  dpm : Table1d.t;  (* pm -> dpm% *)
}

(* Denoised knots for one abscissa/ordinate pair: sort by x, group into
   [bins] equal-population bins, average each bin, then merge knots closer
   than 1e-3 of the x-span — near-coincident knots with Monte Carlo noise on
   y make a cubic spline ring without bound. *)
let knots_of ~bins xs ys =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) order;
  let groups =
    if n <= bins then Array.map (fun i -> ([ i ], 1)) order
    else
      Array.init bins (fun b ->
          let lo = b * n / bins and hi = ((b + 1) * n / bins) - 1 in
          let members = ref [] in
          for i = hi downto lo do
            members := order.(i) :: !members
          done;
          (!members, hi - lo + 1))
  in
  let centre (members, count) =
    let sx = List.fold_left (fun acc i -> acc +. xs.(i)) 0. members in
    let sy = List.fold_left (fun acc i -> acc +. ys.(i)) 0. members in
    (sx /. float_of_int count, sy /. float_of_int count, count)
  in
  let raw = Array.map centre groups in
  let x_lo, _, _ = raw.(0) and x_hi, _, _ = raw.(Array.length raw - 1) in
  let min_step = 1e-3 *. Float.max 1e-30 (x_hi -. x_lo) in
  (* merge runs of knots closer than the minimum step, pooling their data *)
  let merged = ref [] in
  Array.iter
    (fun (x, y, c) ->
      match !merged with
      | (x0, y0, c0) :: rest when x -. x0 < min_step ->
          let total = float_of_int (c0 + c) in
          let fc0 = float_of_int c0 and fc = float_of_int c in
          merged :=
            ( ((x0 *. fc0) +. (x *. fc)) /. total,
              ((y0 *. fc0) +. (y *. fc)) /. total,
              c0 + c )
            :: rest
      | _ -> merged := (x, y, c) :: !merged)
    raw;
  List.rev_map (fun (x, y, _) -> (x, y)) !merged |> Array.of_list

let create ?(control = "3E") ?(bins = 24) points =
  if Array.length points < 2 then
    invalid_arg "Var_model.create: need at least two points";
  let axis =
    match Control.parse control with
    | a :: _ -> a
    | [] -> Control.default_axis
  in
  let sorted = Array.copy points in
  Array.sort (fun a b -> Float.compare a.gain_db b.gain_db) sorted;
  let gains = Array.map (fun p -> p.gain_db) sorted in
  let pms = Array.map (fun p -> p.pm_deg) sorted in
  let dgains = Array.map (fun p -> p.dgain_pct) sorted in
  let dpms = Array.map (fun p -> p.dpm_pct) sorted in
  let gain_knots = knots_of ~bins gains dgains in
  let pm_knots = knots_of ~bins pms dpms in
  let table knots =
    if Array.length knots < 2 then
      (* a front collapsed to (numerically) one abscissa: fall back to a
         flat two-knot table at the pooled mean *)
      let x, y = knots.(0) in
      Table1d.create ~control:axis [| x -. 0.5; x +. 0.5 |] [| y; y |]
    else Table1d.of_unsorted ~control:axis knots
  in
  { points = sorted; dgain = table gain_knots; dpm = table pm_knots }

let points t = Array.copy t.points

let size t = Array.length t.points

let gain_domain t = Table1d.domain t.dgain

let pm_domain t = Table1d.domain t.dpm

let dgain_at t ~gain_db = Float.max 0. (Table1d.eval t.dgain gain_db)

let dpm_at t ~pm_deg = Float.max 0. (Table1d.eval t.dpm pm_deg)

let to_table t =
  Tbl_io.create
    ~columns:[| "gain"; "pm"; "dgain_pct"; "dpm_pct"; "mc_samples" |]
    ~rows:
      (Array.map
         (fun p ->
           [|
             p.gain_db;
             p.pm_deg;
             p.dgain_pct;
             p.dpm_pct;
             float_of_int p.mc_samples;
           |])
         t.points)

let of_table ?control table =
  let gain = Tbl_io.column table "gain" in
  let pm = Tbl_io.column table "pm" in
  let dgain = Tbl_io.column table "dgain_pct" in
  let dpm = Tbl_io.column table "dpm_pct" in
  let samples = Tbl_io.column table "mc_samples" in
  create ?control
    (Array.init (Array.length gain) (fun i ->
         {
           gain_db = gain.(i);
           pm_deg = pm.(i);
           dgain_pct = dgain.(i);
           dpm_pct = dpm.(i);
           mc_samples = int_of_float samples.(i);
         }))
