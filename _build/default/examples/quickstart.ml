(* Quickstart: evaluate an OTA, build a small behavioural model, and ask it
   for a yield-targeted design.

   Run with:  dune exec examples/quickstart.exe *)

module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Experiments = Yield_core.Experiments
module Yield_target = Yield_behavioural.Yield_target
module Macromodel = Yield_behavioural.Macromodel
module Perf_model = Yield_behavioural.Perf_model
module Ga = Yield_ga.Ga

let () =
  (* 1. a single transistor-level evaluation: the objective function *)
  let params = Ota.default_params in
  (match Tb.evaluate params with
  | Some perf ->
      Printf.printf "default OTA: gain %.2f dB, phase margin %.2f deg\n"
        perf.Tb.gain_db perf.Tb.phase_margin_deg
  | None -> print_endline "default OTA failed to bias");

  (* 2. a small run of the full flow: WBGA optimisation, Pareto front,
     Monte Carlo variation model, behavioural tables *)
  let config =
    {
      Config.fast_scale with
      Config.ga = { Ga.default_config with Ga.population_size = 30; generations = 20 };
      mc_samples = 20;
      front_stride = 2;
    }
  in
  print_endline "building the behavioural model (reduced scale)...";
  let flow = Flow.run ~log:(fun s -> print_endline ("  " ^ s)) config in

  (* 3. query the model: what design gives gain/PM with maximum yield? *)
  let spec = Experiments.spec_for_flow flow in
  Printf.printf "specification: gain > %.0f dB, PM > %.0f deg\n"
    spec.Yield_target.min_gain_db spec.Yield_target.min_pm_deg;
  match Flow.design_for_spec flow spec with
  | Error e -> print_endline ("no design: " ^ e)
  | Ok plan ->
      let d = plan.Yield_target.proposal.Macromodel.design in
      Printf.printf
        "model proposes gain %.2f dB / PM %.2f deg after variation inflation\n"
        plan.Yield_target.proposal.Macromodel.proposed_gain_db
        plan.Yield_target.proposal.Macromodel.proposed_pm_deg;
      Array.iteri
        (fun i name -> Printf.printf "  %-3s = %.3g um\n" name (d.Perf_model.params.(i) *. 1e6))
        Ota.param_names;
      (* 4. verify the answer at transistor level *)
      let ota = Ota.params_of_array d.Perf_model.params in
      (match Tb.evaluate ota with
      | Some perf ->
          Printf.printf "transistor check: gain %.2f dB, PM %.2f deg\n"
            perf.Tb.gain_db perf.Tb.phase_margin_deg
      | None -> print_endline "transistor check failed")
