(* The paper's Section 4 walkthrough: symmetrical OTA model generation.

   Steps (Figure 3): netlist + objectives -> WBGA -> Pareto front ->
   Monte Carlo variation model -> table models -> yield-targeted design ->
   transistor-level verification.

   Run with:  dune exec examples/ota_design.exe            (reduced scale)
              YIELDLAB_FULL=1 dune exec examples/ota_design.exe  (paper scale) *)

module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Netlist = Yield_spice.Netlist
module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Report = Yield_core.Report
module Experiments = Yield_core.Experiments
module Perf_model = Yield_behavioural.Perf_model
module Var_model = Yield_behavioural.Var_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target
module Montecarlo = Yield_process.Montecarlo

let () =
  let paper_scale = Sys.getenv_opt "YIELDLAB_FULL" <> None in
  let config = if paper_scale then Config.paper_scale else Config.fast_scale in

  (* step 1: netlist generation.  The testbench builder is the "netlist
     generation" stage; print it once so the artefact is visible. *)
  let circuit, _ = Tb.build Ota.default_params in
  print_endline "--- testbench netlist (default sizing) ---";
  print_string (Netlist.to_string circuit);

  (* steps 2-5: optimisation, Pareto front, MC, table models *)
  Printf.printf "\n--- running the flow (%s) ---\n%!" (Config.scale_name config);
  let flow = Flow.run ~log:print_endline config in
  let glo, ghi = Perf_model.gain_range flow.Flow.perf_model in
  Printf.printf "performance model: %d points, gain %.2f..%.2f dB\n"
    (Perf_model.size flow.Flow.perf_model) glo ghi;
  Printf.printf "variation model: %d Monte Carlo'd points\n"
    (Array.length flow.Flow.var_points);

  (* persist the tables, as the paper's data files *)
  let files = Flow.save_tables flow ~dir:"." in
  List.iter (Printf.printf "wrote %s\n") files;

  (* emit the paper's §4.4 artefact: the Verilog-A module + its tables *)
  let va_files =
    Yield_behavioural.Verilog_a.save flow.Flow.macromodel ~dir:"."
  in
  List.iter (Printf.printf "wrote %s\n") va_files;

  (* step 6: a yield-targeted design query (Table 3) *)
  let spec = Experiments.spec_for_flow flow in
  Printf.printf "\n--- yield targeting: gain > %.0f dB, PM > %.0f deg ---\n"
    spec.Yield_target.min_gain_db spec.Yield_target.min_pm_deg;
  match Flow.design_for_spec flow spec with
  | Error e -> print_endline ("design query failed: " ^ e)
  | Ok plan ->
      let p = plan.Yield_target.proposal in
      Printf.printf "variation at spec: dGain %.2f %%, dPM %.2f %%\n"
        p.Macromodel.gain_delta_pct p.Macromodel.pm_delta_pct;
      Printf.printf "inflated target:   gain %.2f dB, PM %.2f deg\n"
        p.Macromodel.proposed_gain_db p.Macromodel.proposed_pm_deg;
      let design = p.Macromodel.design in
      Printf.printf "table design:      gain %.2f dB, PM %.2f deg\n"
        design.Perf_model.gain_db design.Perf_model.pm_deg;

      (* verification: nominal + Monte Carlo at transistor level (Table 4
         and the paper's 500-sample yield check) *)
      let params = Ota.params_of_array design.Perf_model.params in
      let samples = if paper_scale then 500 else 60 in
      (match Flow.verify_design flow ~samples ~spec params with
      | Error e -> print_endline ("verification failed: " ^ e)
      | Ok v ->
          Printf.printf "nominal transistor: gain %.2f dB, PM %.2f deg\n"
            v.Flow.nominal.Tb.gain_db v.Flow.nominal.Tb.phase_margin_deg;
          Printf.printf "MC yield (%d samples): %.1f %% (95%% CI %.1f-%.1f)\n"
            v.Flow.yield.Montecarlo.total
            (100. *. v.Flow.yield.Montecarlo.yield)
            (100. *. v.Flow.yield.Montecarlo.ci_low)
            (100. *. v.Flow.yield.Montecarlo.ci_high))
