(* The paper's Section 5 walkthrough: designing the 2nd-order anti-aliasing
   filter from the OTA behavioural model, then verifying the result — and
   its yield — at transistor level.

   Run with:  dune exec examples/filter_design.exe *)

module Ota = Yield_circuits.Ota
module Filter = Yield_circuits.Filter
module Measure = Yield_spice.Measure
module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Report = Yield_core.Report
module Experiments = Yield_core.Experiments
module Perf_model = Yield_behavioural.Perf_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target
module Variation = Yield_process.Variation
module Montecarlo = Yield_process.Montecarlo
module Rng = Yield_stats.Rng

let () =
  (* an OTA behavioural model from a reduced-scale flow run *)
  print_endline "building the OTA behavioural model...";
  let flow = Flow.run Config.fast_scale in
  let spec_ota = Experiments.spec_for_flow flow in
  let design =
    match Flow.design_for_spec flow spec_ota with
    | Ok plan -> plan.Yield_target.proposal.Macromodel.design
    | Error e -> failwith e
  in
  let amp = Macromodel.amp_of_design design in
  Printf.printf "OTA from model: gain %.2f dB, rout %s Ohm\n"
    amp.Filter.gain_db (Report.si amp.Filter.rout);

  (* the anti-aliasing mask (Figure 10) with a design guard band *)
  let spec = Filter.default_spec in
  let design_spec =
    { spec with Filter.ripple_db = spec.Filter.ripple_db -. 0.2;
                atten_db = spec.Filter.atten_db +. 3. }
  in
  Printf.printf "mask: passband to %sHz at +-%.1f dB, >= %.0f dB beyond %sHz\n"
    (Report.si spec.Filter.f_pass) spec.Filter.ripple_db spec.Filter.atten_db
    (Report.si spec.Filter.f_stop);

  (* the paper's Section 5 MOO: 30 individuals x 40 generations over the
     capacitors *)
  let result = Filter.optimise amp design_spec (Rng.create 11) in
  let caps = result.Filter.best in
  Printf.printf "capacitors: C1 = %sF, C2 = %sF, C3 = %sF\n"
    (Report.si caps.Filter.c1) (Report.si caps.Filter.c2)
    (Report.si caps.Filter.c3);

  (* verification at transistor level *)
  let params = Ota.params_of_array design.Perf_model.params in
  (match Filter.response_transistor params caps with
  | None -> print_endline "transistor filter failed to bias"
  | Some bode ->
      let c = Filter.check spec bode in
      Printf.printf
        "transistor filter: passband margin %.2f dB, stopband margin %.2f dB \
         (meets spec: %b)\n"
        c.Filter.passband_margin_db c.Filter.stopband_margin_db
        c.Filter.meets_spec;
      (* print the response every half decade *)
      let mags = Measure.magnitudes_db bode in
      Array.iteri
        (fun i f ->
          if i mod 10 = 0 then
            Printf.printf "  %8sHz  %7.2f dB\n" (Report.si f) mags.(i))
        bode.Yield_spice.Ac.freqs);

  (* Monte Carlo yield of the closed filter *)
  let circuit, out = Filter.build_transistor params caps in
  let rng = Rng.create 99 in
  let results =
    Montecarlo.run ~samples:100 ~rng (fun r ->
        let perturbed = Variation.perturb_circuit Variation.default_spec r circuit in
        match Filter.response_of_circuit perturbed ~out with
        | None -> None
        | Some b -> Some (Filter.check spec b))
  in
  let est = Montecarlo.yield_of (fun c -> c.Filter.meets_spec) results in
  Printf.printf "filter Monte Carlo yield (%d samples): %.1f %%\n"
    est.Montecarlo.total (100. *. est.Montecarlo.yield)
