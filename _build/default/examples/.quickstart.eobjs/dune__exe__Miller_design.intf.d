examples/miller_design.mli:
