examples/process_exploration.ml: Array List Printf String Yield_circuits Yield_process Yield_spice Yield_stats
