examples/ota_design.mli:
