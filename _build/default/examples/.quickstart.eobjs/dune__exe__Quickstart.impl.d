examples/quickstart.ml: Array Printf Yield_behavioural Yield_circuits Yield_core Yield_ga
