examples/quickstart.mli:
