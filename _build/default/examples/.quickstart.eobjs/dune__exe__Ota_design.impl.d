examples/ota_design.ml: Array List Printf Sys Yield_behavioural Yield_circuits Yield_core Yield_process Yield_spice
