examples/filter_design.mli:
