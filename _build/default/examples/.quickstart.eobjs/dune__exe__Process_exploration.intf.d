examples/process_exploration.mli:
