(* Generalisation example: the paper's flow applied to a different topology —
   a two-stage Miller-compensated OTA — through the generic pipeline
   (Flow.Make works for any Amplifier.S).

   Run with:  dune exec examples/miller_design.exe *)

module Miller = Yield_circuits.Miller
module Gtb = Yield_circuits.Testbench
module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Experiments = Yield_core.Experiments
module Ga = Yield_ga.Ga
module Perf_model = Yield_behavioural.Perf_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target
module Montecarlo = Yield_process.Montecarlo

module Miller_flow = Flow.Make (Miller)

let () =
  (* the Miller stage's GBW is gm1/(2 pi Cc) ~ 7 MHz, so the bandwidth
     floor of the eq. 1 constraint moves accordingly *)
  let config =
    {
      Config.fast_scale with
      Config.conditions =
        { Gtb.default_conditions with Gtb.min_unity_gain_hz = 5e6 };
      ga = { Ga.default_config with Ga.population_size = 40; generations = 25 };
      mc_samples = 20;
      front_stride = 2;
      seed = 17;
    }
  in
  print_endline "running the flow on the two-stage Miller OTA...";
  let flow = Miller_flow.run ~log:(fun s -> print_endline ("  " ^ s)) config in
  let glo, ghi = Perf_model.gain_range flow.Flow.perf_model in
  Printf.printf "model: gain range %.1f..%.1f dB, %d points\n" glo ghi
    (Perf_model.size flow.Flow.perf_model);

  (* a yield-targeted design query against the Miller model *)
  let spec = Experiments.spec_for_flow flow in
  Printf.printf "specification: gain > %.0f dB, PM > %.0f deg\n"
    spec.Yield_target.min_gain_db spec.Yield_target.min_pm_deg;
  match Flow.design_for_spec flow spec with
  | Error e -> print_endline ("design query failed: " ^ e)
  | Ok plan ->
      let design = plan.Yield_target.proposal.Macromodel.design in
      Printf.printf "model design: gain %.2f dB, PM %.2f deg\n"
        design.Perf_model.gain_db design.Perf_model.pm_deg;
      let params = Miller.params_of_array design.Perf_model.params in
      (* transistor-level Monte Carlo verification, exactly as for the
         symmetrical OTA *)
      match Miller_flow.verify_design flow ~samples:80 ~spec params with
      | Error e -> print_endline ("verification failed: " ^ e)
      | Ok v ->
          Printf.printf "nominal transistor: gain %.2f dB, PM %.2f deg\n"
            v.Flow.nominal.Gtb.gain_db v.Flow.nominal.Gtb.phase_margin_deg;
          Printf.printf "MC yield (%d samples): %.1f %%\n"
            v.Flow.yield.Montecarlo.total
            (100. *. v.Flow.yield.Montecarlo.yield)
