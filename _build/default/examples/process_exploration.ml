(* Exploring the process-variation substrate: corners, Monte Carlo
   histograms, and the Pelgrom area law — the machinery behind the paper's
   variation model (§3.4).

   Run with:  dune exec examples/process_exploration.exe *)

module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Tech = Yield_process.Tech
module Corner = Yield_process.Corner
module Variation = Yield_process.Variation
module Montecarlo = Yield_process.Montecarlo
module Mosfet = Yield_spice.Mosfet
module Summary = Yield_stats.Summary
module Rng = Yield_stats.Rng

let params = Ota.default_params

let () =
  (* 1. corners: the deterministic envelope *)
  print_endline "--- corners (3 sigma global) ---";
  List.iter
    (fun corner ->
      let tech = Corner.apply Variation.default_spec corner Tech.c35 in
      let conditions = { Tb.default_conditions with Tb.tech } in
      match Tb.evaluate ~conditions params with
      | Some p ->
          Printf.printf "%-3s gain %6.2f dB  pm %6.2f deg\n"
            (Corner.to_string corner) p.Tb.gain_db p.Tb.phase_margin_deg
      | None -> Printf.printf "%-3s failed\n" (Corner.to_string corner))
    Corner.all;

  (* 2. Monte Carlo: the statistical distribution and a gain histogram *)
  print_endline "\n--- Monte Carlo (200 samples) ---";
  let rng = Rng.create 41 in
  let results =
    Montecarlo.run ~samples:200 ~rng (fun r ->
        Tb.evaluate_sampled ~spec:Variation.default_spec ~rng:r params)
  in
  let gains = Array.map (fun p -> p.Tb.gain_db) results in
  let s = Summary.of_array gains in
  Printf.printf "gain: mean %.3f dB, sd %.3f dB over %d samples\n"
    (Summary.mean s) (Summary.stddev s) (Summary.count s);
  let h = Summary.histogram ~bins:12 gains in
  Array.iteri
    (fun i count ->
      Printf.printf "  %7.3f..%7.3f %s\n" h.Summary.edges.(i)
        h.Summary.edges.(i + 1)
        (String.make count '#'))
    h.Summary.counts;

  (* 3. Pelgrom's law: threshold mismatch shrinks with sqrt(W L) *)
  print_endline "\n--- mismatch vs device area (Pelgrom) ---";
  List.iter
    (fun (w, l) ->
      let sigma =
        Variation.mismatch_sigma_vth Variation.default_spec Mosfet.Nmos ~w ~l
      in
      Printf.printf "W=%4.0fum L=%4.1fum  area %7.1f um^2  sigma(dVth) %6.3f mV\n"
        (w *. 1e6) (l *. 1e6)
        (w *. l *. 1e12)
        (sigma *. 1e3))
    [ (10e-6, 0.35e-6); (10e-6, 1e-6); (30e-6, 1e-6); (60e-6, 4e-6) ];

  (* 4. how the performance spread scales if the process were noisier *)
  print_endline "\n--- performance spread vs variation scale ---";
  match Tb.evaluate params with
  | None -> print_endline "nominal evaluation failed"
  | Some nominal ->
      List.iter
        (fun k ->
          let spec = Variation.scale_spec k Variation.default_spec in
          let rng = Rng.create 7 in
          let rs =
            Montecarlo.run ~samples:80 ~rng (fun r ->
                Tb.evaluate_sampled ~spec ~rng:r params)
          in
          let gains = Array.map (fun p -> p.Tb.gain_db) rs in
          Printf.printf "sigma x%-4.2g  dGain %5.2f %%\n" k
            (Montecarlo.spread_pct gains ~nominal:nominal.Tb.gain_db))
        [ 0.25; 0.5; 1.; 2.; 4. ]
