(* Tests for the yield_table library: splines, control strings, table
   models, grids, curves and .tbl I/O. *)

module Spline = Yield_table.Spline
module Control = Yield_table.Control
module Table1d = Yield_table.Table1d
module Grid = Yield_table.Grid
module Curve = Yield_table.Curve
module Tbl_io = Yield_table.Tbl_io
module Table_model = Yield_table.Table_model
module Rng = Yield_stats.Rng

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

(* --- splines --- *)

let xs5 = [| 0.; 1.; 2.; 3.; 4. |]

let test_spline_reproduces_knots () =
  let ys = [| 1.; -1.; 2.; 0.; 3. |] in
  List.iter
    (fun (name, build) ->
      let s = build xs5 ys in
      Array.iteri
        (fun i x -> check_float ~eps:1e-9 (name ^ " knot") ys.(i) (Spline.eval s x))
        xs5)
    [ ("linear", Spline.linear); ("quadratic", Spline.quadratic); ("cubic", Spline.cubic) ]

let test_linear_midpoints () =
  let s = Spline.linear [| 0.; 2. |] [| 0.; 4. |] in
  check_float "mid" 2. (Spline.eval s 1.);
  check_float "slope" 2. (Spline.derivative s 1.)

let test_cubic_exact_on_cubics_interior () =
  (* natural cubic splines reproduce straight lines exactly *)
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs5 in
  let s = Spline.cubic xs5 ys in
  check_float ~eps:1e-9 "line" 4.0 (Spline.eval s 1.5);
  check_float ~eps:1e-9 "derivative" 2. (Spline.derivative s 2.3)

let test_cubic_smoothness () =
  (* C1 continuity at an interior knot *)
  let ys = [| 0.; 1.; 0.; 2.; -1. |] in
  let s = Spline.cubic xs5 ys in
  let h = 1e-7 in
  let left = (Spline.eval s 2. -. Spline.eval s (2. -. h)) /. h in
  let right = (Spline.eval s (2. +. h) -. Spline.eval s 2.) /. h in
  check_float ~eps:1e-5 "derivative continuous" left right

let test_spline_validation () =
  (match Spline.cubic [| 0.; 0. |] [| 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing knots accepted");
  match Spline.linear [| 0. |] [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single knot accepted"

let prop_cubic_interpolates_smooth_functions =
  QCheck.Test.make ~count:60 ~name:"cubic spline tracks sin within grid error"
    QCheck.(float_range 0.3 2.8)
    (fun x ->
      let xs = Array.init 30 (fun i -> float_of_int i /. 29. *. Float.pi) in
      let ys = Array.map sin xs in
      let s = Spline.cubic xs ys in
      Float.abs (Spline.eval s x -. sin x) < 1e-4)

let test_monotone_cubic_no_overshoot () =
  (* a step-like data set: natural cubic rings, pchip must not *)
  let xs = [| 0.; 1.; 2.; 3.; 4.; 5. |] in
  let ys = [| 0.; 0.; 0.; 1.; 1.; 1. |] in
  let s = Spline.monotone_cubic xs ys in
  (* knots reproduced *)
  Array.iteri (fun i x -> check_float "knot" ys.(i) (Spline.eval s x)) xs;
  (* no value outside [0, 1] anywhere *)
  let ok = ref true in
  for i = 0 to 500 do
    let x = float_of_int i /. 100. in
    let v = Spline.eval s x in
    if v < -1e-12 || v > 1. +. 1e-12 then ok := false
  done;
  Alcotest.(check bool) "stays within data" true !ok;
  (* natural cubic does overshoot this data set *)
  let nat = Spline.cubic xs ys in
  let overshoots = ref false in
  for i = 0 to 500 do
    let v = Spline.eval nat (float_of_int i /. 100.) in
    if v < -1e-6 || v > 1. +. 1e-6 then overshoots := true
  done;
  Alcotest.(check bool) "natural cubic rings on steps" true !overshoots

let prop_monotone_cubic_is_monotone =
  QCheck.Test.make ~count:100 ~name:"pchip preserves monotonicity"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 10 in
      let xs = Array.init n (fun i -> float_of_int i +. (0.3 *. Rng.float rng)) in
      (* monotone increasing data with random increments *)
      let ys = Array.make n 0. in
      for i = 1 to n - 1 do
        ys.(i) <- ys.(i - 1) +. Rng.float rng
      done;
      let s = Spline.monotone_cubic xs ys in
      let ok = ref true in
      let prev = ref (Spline.eval s xs.(0)) in
      for i = 1 to 300 do
        let x = xs.(0) +. (float_of_int i /. 300. *. (xs.(n - 1) -. xs.(0))) in
        let v = Spline.eval s x in
        if v < !prev -. 1e-9 then ok := false;
        prev := v
      done;
      !ok)

(* --- control strings --- *)

let test_control_parse () =
  (match Control.parse "3E" with
  | [ Control.Interpolate { degree = Control.Cubic; extrapolation = Control.Error } ] -> ()
  | _ -> Alcotest.fail "3E misparsed");
  (match Control.parse "1C,2L" with
  | [
   Control.Interpolate { degree = Control.Linear; extrapolation = Control.Clamp };
   Control.Interpolate { degree = Control.Quadratic; extrapolation = Control.Extend };
  ] ->
      ()
  | _ -> Alcotest.fail "1C,2L misparsed");
  (match Control.parse "I" with
  | [ Control.Ignore ] -> ()
  | _ -> Alcotest.fail "I misparsed");
  (match Control.parse "ME" with
  | [ Control.Interpolate { degree = Control.Monotone; extrapolation = Control.Error } ] -> ()
  | _ -> Alcotest.fail "ME misparsed");
  match Control.parse "9Q" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad token accepted"

let test_control_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Control.to_string (Control.parse s)))
    [ "3E"; "1C"; "2L"; "3E,3E"; "I"; "1C,3E,2L"; "ME" ]

(* --- 1-D tables --- *)

let test_table1d_extrapolation_modes () =
  let xs = [| 0.; 1.; 2. |] and ys = [| 0.; 1.; 4. |] in
  let clamp = Table1d.create ~control:(Control.parse_axis "1C") xs ys in
  check_float "clamp low" 0. (Table1d.eval clamp (-5.));
  check_float "clamp high" 4. (Table1d.eval clamp 10.);
  let extend = Table1d.create ~control:(Control.parse_axis "1L") xs ys in
  check_float "extend low" (-1.) (Table1d.eval extend (-1.));
  check_float "extend high" 7. (Table1d.eval extend 3.);
  let error = Table1d.create ~control:(Control.parse_axis "1E") xs ys in
  check_float "error inside ok" 1. (Table1d.eval error 1.);
  (match Table1d.eval error 2.5 with
  | exception Table1d.Out_of_range { value; lo; hi } ->
      check_float "exn value" 2.5 value;
      check_float "exn lo" 0. lo;
      check_float "exn hi" 2. hi
  | _ -> Alcotest.fail "expected Out_of_range");
  Alcotest.(check (option (float 1e-9))) "eval_opt none" None
    (Table1d.eval_opt error 2.5)

let test_table1d_of_unsorted () =
  let t = Table1d.of_unsorted [| (2., 4.); (0., 0.); (1., 1.); (1., 3.) |] in
  (* duplicate x = 1 averaged to 2 *)
  check_float "averaged duplicate" 2. (Table1d.eval t 1.);
  check_float "sorted ends" 0. (Table1d.eval t 0.)

(* --- grids --- *)

let test_grid_bilinear () =
  let g =
    Grid.create
      ~axes:[| [| 0.; 1. |]; [| 0.; 1. |] |]
      ~values:[| 0.; 1.; 2.; 3. |] (* f(x,y) = 2x + y *)
      ()
  in
  check_float "corner" 3. (Grid.eval g [| 1.; 1. |]);
  check_float "centre" 1.5 (Grid.eval g [| 0.5; 0.5 |]);
  check_float "edge" 2.5 (Grid.eval g [| 1.; 0.5 |])

let test_grid_3d () =
  (* f(x,y,z) = x + 10y + 100z on a 2x2x2 grid *)
  let values = Array.make 8 0. in
  let axes = [| [| 0.; 1. |]; [| 0.; 1. |]; [| 0.; 1. |] |] in
  let idx i j k = (i * 4) + (j * 2) + k in
  List.iter
    (fun (i, j, k) ->
      values.(idx i j k) <-
        float_of_int i +. (10. *. float_of_int j) +. (100. *. float_of_int k))
    [ (0,0,0); (0,0,1); (0,1,0); (0,1,1); (1,0,0); (1,0,1); (1,1,0); (1,1,1) ];
  let g = Grid.create ~axes ~values () in
  check_float "trilinear" 55.5 (Grid.eval g [| 0.5; 0.5; 0.5 |]);
  check_float "axis" 100. (Grid.eval g [| 0.; 0.; 1. |])

let test_grid_validation () =
  match Grid.create ~axes:[| [| 0.; 1. |] |] ~values:[| 1. |] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad value count accepted"

(* --- curves --- *)

let quarter_circle n =
  Array.init n (fun i ->
      let t = float_of_int i /. float_of_int (n - 1) *. (Float.pi /. 2.) in
      [| cos t; sin t |])

let test_curve_projection () =
  let inputs = quarter_circle 40 in
  let angle = Array.init 40 (fun i -> float_of_int i /. 39. *. 90.) in
  let c = Curve.create ~inputs ~columns:[ ("angle", angle) ] () in
  (* a point on the curve evaluates to its own parameter *)
  let v = Curve.eval c "angle" [| cos 0.5; sin 0.5 |] in
  check_float ~eps:0.02 "on-curve angle" (0.5 *. 180. /. Float.pi) v;
  (* a point off the curve projects to the nearest arc *)
  let v2 = Curve.eval c "angle" [| 2. *. cos 0.7; 2. *. sin 0.7 |] in
  check_float ~eps:0.05 "projected angle" (0.7 *. 180. /. Float.pi) v2;
  let _, dist = Curve.project c [| 0.; 0. |] in
  Alcotest.(check bool) "distance reported" true (dist > 0.4)

let test_curve_duplicates_merged () =
  let inputs = [| [| 0.; 0. |]; [| 0.; 0. |]; [| 1.; 1. |] |] in
  let c = Curve.create ~inputs ~columns:[ ("y", [| 5.; 5.; 7. |]) ] () in
  check_float ~eps:1e-6 "end value" 7. (Curve.eval c "y" [| 1.; 1. |])

let test_curve_decimation () =
  (* 1000 nearly coincident points plus two distinct ends must not blow up *)
  let inputs =
    Array.init 1000 (fun i ->
        let t = if i = 0 then 0. else if i = 999 then 1. else 0.5 +. (1e-9 *. float_of_int i) in
        [| t; t |])
  in
  let col = Array.init 1000 (fun i -> float_of_int i) in
  let c = Curve.create ~inputs ~columns:[ ("v", col) ] () in
  let v = Curve.eval c "v" [| 0.75; 0.75 |] in
  Alcotest.(check bool) "finite result" true (Float.is_finite v)

let test_curve_errors () =
  (match Curve.create ~inputs:[| [| 0. |] |] ~columns:[] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single point accepted");
  let c =
    Curve.create ~inputs:[| [| 0.; 0. |]; [| 1.; 1. |] |]
      ~columns:[ ("y", [| 0.; 1. |]) ] ()
  in
  match Curve.eval c "nope" [| 0.; 0. |] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown column accepted"

(* --- tbl io --- *)

let test_tbl_roundtrip () =
  let t =
    Tbl_io.create ~columns:[| "a"; "b" |]
      ~rows:[| [| 1.; 2. |]; [| 3.; 4.5 |]; [| -1e-12; 7e9 |] |]
  in
  let t2 = Tbl_io.of_string (Tbl_io.to_string t) in
  Alcotest.(check (array string)) "columns" t.Tbl_io.columns t2.Tbl_io.columns;
  Alcotest.(check int) "rows" 3 (Tbl_io.n_rows t2);
  check_float ~eps:1e-15 "precision kept" 7e9 (Tbl_io.column t2 "b").(2)

let test_tbl_default_columns () =
  let t = Tbl_io.of_string "1 2 3\n4 5 6\n" in
  Alcotest.(check (array string)) "names" [| "c0"; "c1"; "c2" |] t.Tbl_io.columns

let test_tbl_comments_and_blanks () =
  let t = Tbl_io.of_string "# a comment\n\n1 2\n# another\n3 4\n" in
  Alcotest.(check int) "rows" 2 (Tbl_io.n_rows t)

let test_tbl_ragged_rejected () =
  match Tbl_io.of_string "1 2\n3\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "ragged accepted"

let test_tbl_sort_by () =
  let t = Tbl_io.create ~columns:[| "x"; "y" |] ~rows:[| [| 3.; 1. |]; [| 1.; 2. |] |] in
  let s = Tbl_io.sort_by t "x" in
  check_float "sorted first" 1. s.Tbl_io.rows.(0).(0)

let test_tbl_file_io () =
  let path = Filename.temp_file "yieldlab" ".tbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = Tbl_io.create ~columns:[| "x" |] ~rows:[| [| 42. |] |] in
      Tbl_io.write ~path t;
      let t2 = Tbl_io.read ~path in
      check_float "roundtrip through disk" 42. (Tbl_io.column t2 "x").(0))

(* --- table_model --- *)

let test_model_1d () =
  let inputs = Array.init 5 (fun i -> [| float_of_int i |]) in
  let output = Array.map (fun row -> row.(0) *. row.(0)) inputs in
  let m = Table_model.create ~control:"3C" ~inputs ~output () in
  Alcotest.(check bool) "kind" true (Table_model.kind m = Table_model.One_dimensional);
  check_float ~eps:0.05 "parabola mid" 6.25 (Table_model.eval1 m 2.5)

let test_model_detects_grid () =
  let inputs = ref [] in
  let output = ref [] in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          inputs := [| x; y |] :: !inputs;
          output := (x +. (2. *. y)) :: !output)
        [ 0.; 1.; 2. ])
    [ 0.; 10. ];
  let m =
    Table_model.create
      ~inputs:(Array.of_list (List.rev !inputs))
      ~output:(Array.of_list (List.rev !output))
      ()
  in
  Alcotest.(check bool) "gridded" true (Table_model.kind m = Table_model.Gridded);
  check_float "grid eval" 7. (Table_model.eval2 m 5. 1.)

let test_model_scattered_curve () =
  (* points along y = x diagonal: not a grid *)
  let inputs = Array.init 6 (fun i -> [| float_of_int i; float_of_int i |]) in
  let output = Array.init 6 (fun i -> 10. *. float_of_int i) in
  let m = Table_model.create ~inputs ~output () in
  Alcotest.(check bool) "curve" true (Table_model.kind m = Table_model.Scattered_curve);
  check_float ~eps:0.01 "on-curve" 25. (Table_model.eval2 m 2.5 2.5)

let test_model_of_table () =
  let t =
    Tbl_io.create ~columns:[| "x"; "f" |]
      ~rows:[| [| 0.; 0. |]; [| 1.; 2. |]; [| 2.; 4. |] |]
  in
  let m = Table_model.of_table t ~inputs:[ "x" ] ~output:"f" in
  check_float "linear" 3. (Table_model.eval1 m 1.5)

let prop_model_1d_matches_spline =
  QCheck.Test.make ~count:50 ~name:"1-input table model reproduces samples"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 10 in
      let xs = Array.init n (fun i -> float_of_int i +. (0.5 *. Rng.float rng)) in
      let ys = Array.init n (fun _ -> Rng.float rng *. 10.) in
      let inputs = Array.map (fun x -> [| x |]) xs in
      let m = Table_model.create ~control:"3C" ~inputs ~output:ys () in
      let ok = ref true in
      Array.iteri
        (fun i x -> if Float.abs (Table_model.eval1 m x -. ys.(i)) > 1e-6 then ok := false)
        xs;
      !ok)

let suites =
  [
    ( "table.spline",
      [
        Alcotest.test_case "reproduces knots" `Quick test_spline_reproduces_knots;
        Alcotest.test_case "linear midpoints" `Quick test_linear_midpoints;
        Alcotest.test_case "exact on lines" `Quick test_cubic_exact_on_cubics_interior;
        Alcotest.test_case "C1 smooth" `Quick test_cubic_smoothness;
        Alcotest.test_case "validation" `Quick test_spline_validation;
        Alcotest.test_case "pchip no overshoot" `Quick test_monotone_cubic_no_overshoot;
        QCheck_alcotest.to_alcotest prop_monotone_cubic_is_monotone;
        QCheck_alcotest.to_alcotest prop_cubic_interpolates_smooth_functions;
      ] );
    ( "table.control",
      [
        Alcotest.test_case "parse" `Quick test_control_parse;
        Alcotest.test_case "roundtrip" `Quick test_control_roundtrip;
      ] );
    ( "table.table1d",
      [
        Alcotest.test_case "extrapolation modes" `Quick test_table1d_extrapolation_modes;
        Alcotest.test_case "of_unsorted" `Quick test_table1d_of_unsorted;
      ] );
    ( "table.grid",
      [
        Alcotest.test_case "bilinear" `Quick test_grid_bilinear;
        Alcotest.test_case "3d" `Quick test_grid_3d;
        Alcotest.test_case "validation" `Quick test_grid_validation;
      ] );
    ( "table.curve",
      [
        Alcotest.test_case "projection" `Quick test_curve_projection;
        Alcotest.test_case "duplicates merged" `Quick test_curve_duplicates_merged;
        Alcotest.test_case "decimation" `Quick test_curve_decimation;
        Alcotest.test_case "errors" `Quick test_curve_errors;
      ] );
    ( "table.tbl_io",
      [
        Alcotest.test_case "roundtrip" `Quick test_tbl_roundtrip;
        Alcotest.test_case "default columns" `Quick test_tbl_default_columns;
        Alcotest.test_case "comments" `Quick test_tbl_comments_and_blanks;
        Alcotest.test_case "ragged rejected" `Quick test_tbl_ragged_rejected;
        Alcotest.test_case "sort_by" `Quick test_tbl_sort_by;
        Alcotest.test_case "file io" `Quick test_tbl_file_io;
      ] );
    ( "table.table_model",
      [
        Alcotest.test_case "1d" `Quick test_model_1d;
        Alcotest.test_case "grid detection" `Quick test_model_detects_grid;
        Alcotest.test_case "scattered curve" `Quick test_model_scattered_curve;
        Alcotest.test_case "of_table" `Quick test_model_of_table;
        QCheck_alcotest.to_alcotest prop_model_1d_matches_spline;
      ] );
  ]
