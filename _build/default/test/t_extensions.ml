(* Tests for the extension features: LHS sampling, sensitivity analysis,
   OTA step response / CMRR / PSRR / noise measurements, the Verilog-A
   emitter, and the guarded performance-model lookup. *)

module Lhs = Yield_stats.Lhs
module Rng = Yield_stats.Rng
module Summary = Yield_stats.Summary
module Variation = Yield_process.Variation
module Sensitivity = Yield_process.Sensitivity
module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Perf_model = Yield_behavioural.Perf_model
module Var_model = Yield_behavioural.Var_model
module Macromodel = Yield_behavioural.Macromodel
module Verilog_a = Yield_behavioural.Verilog_a
module Tbl_io = Yield_table.Tbl_io

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  nn = 0 || scan 0

(* --- LHS --- *)

let test_lhs_stratification () =
  let rng = Rng.create 3 in
  let n = 50 in
  let samples = Lhs.sample rng ~n ~dims:3 in
  Alcotest.(check int) "rows" n (Array.length samples);
  (* every stratum of every dimension hit exactly once *)
  for j = 0 to 2 do
    let hit = Array.make n false in
    Array.iter
      (fun row ->
        let k = int_of_float (row.(j) *. float_of_int n) in
        let k = Stdlib.min (n - 1) k in
        if hit.(k) then Alcotest.fail "stratum hit twice";
        hit.(k) <- true)
      samples;
    Alcotest.(check bool) "all strata hit" true (Array.for_all Fun.id hit)
  done

let test_lhs_normal_moments () =
  let rng = Rng.create 5 in
  let samples = Lhs.sample_normal rng ~n:2000 ~dims:1 in
  let xs = Array.map (fun row -> row.(0)) samples in
  let s = Summary.of_array xs in
  check_float ~eps:0.01 "mean" 0. (Summary.mean s);
  check_float ~eps:0.02 "sd" 1. (Summary.stddev s)

let test_lhs_variance_reduction () =
  (* estimating E[sum of uniforms] : LHS beats plain MC in spread across
     repeated estimates *)
  let estimate sampler seed =
    let rng = Rng.create seed in
    let rows = sampler rng in
    let acc = ref 0. in
    Array.iter (fun row -> acc := !acc +. Array.fold_left ( +. ) 0. row) rows;
    !acc /. float_of_int (Array.length rows)
  in
  let n = 40 and dims = 4 in
  let lhs_est seed = estimate (fun rng -> Lhs.sample rng ~n ~dims) seed in
  let mc_est seed =
    estimate
      (fun rng -> Array.init n (fun _ -> Array.init dims (fun _ -> Rng.float rng)))
      seed
  in
  let spread f =
    let xs = Array.init 40 (fun i -> f (i + 1)) in
    Summary.stddev (Summary.of_array xs)
  in
  Alcotest.(check bool) "lhs tighter" true (spread lhs_est < spread mc_est /. 2.)

let test_global_draw_of_normals () =
  let spec = Variation.default_spec in
  let draw = Variation.global_draw_of_normals spec [| 1.; 0.; 0.; 0.; 0. |] in
  check_float "one sigma vth_n" spec.Variation.global.Variation.sigma_vth_n
    draw.Variation.dvth_n;
  check_float "others zero" 0. draw.Variation.dkp_rel_p;
  match Variation.global_draw_of_normals spec [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity not checked"

(* --- sensitivity --- *)

let test_sensitivity_linear_model () =
  (* response = 2*dvth_n + 1*dkp_rel_n (in sigma units) *)
  let spec = Variation.default_spec in
  let eval (d : Variation.global_draw) =
    Some
      ((2. *. d.Variation.dvth_n /. spec.Variation.global.Variation.sigma_vth_n)
      +. (d.Variation.dkp_rel_n /. spec.Variation.global.Variation.sigma_kp_rel_n))
  in
  match Sensitivity.analyse ~spec ~eval with
  | Error e -> Alcotest.fail e
  | Ok results ->
      let find c =
        List.find (fun r -> r.Sensitivity.component = c) results
      in
      check_float "vth_n slope" 2. (find Sensitivity.Vth_n).Sensitivity.per_sigma;
      check_float "kp_n slope" 1. (find Sensitivity.Kp_n).Sensitivity.per_sigma;
      check_float ~eps:1e-9 "variance shares" 0.8
        (find Sensitivity.Vth_n).Sensitivity.variance_share;
      let total =
        List.fold_left (fun acc r -> acc +. r.Sensitivity.variance_share) 0. results
      in
      check_float "shares sum to 1" 1. total

let test_sensitivity_on_ota_gain () =
  let spec = Variation.default_spec in
  let eval draw =
    Option.map
      (fun p -> p.Tb.gain_db)
      (Tb.evaluate_with_draw ~spec ~draw Ota.default_params)
  in
  match Sensitivity.analyse ~spec ~eval with
  | Error e -> Alcotest.fail e
  | Ok results ->
      (* channel-length modulation dominates the gain spread of this
         topology (it sets Rout) *)
      let lambda = List.find (fun r -> r.Sensitivity.component = Sensitivity.Lambda) results in
      Alcotest.(check bool) "lambda is a major contributor" true
        (lambda.Sensitivity.variance_share > 0.3)

(* --- OTA time-domain and rejection measurements --- *)

let test_step_response_slews () =
  match Tb.step_perf Ota.default_params with
  | None -> Alcotest.fail "step response failed"
  | Some s ->
      (* the ideal slew limit is Itail/CL = 20uA / 3pF = 6.7 V/us *)
      Alcotest.(check bool) "slew in physical range" true
        (s.Tb.slew_v_per_us > 2. && s.Tb.slew_v_per_us < 20.);
      Alcotest.(check bool) "settles" true (s.Tb.settling_1pct_s <> None);
      Alcotest.(check bool) "follower gain error small" true
        (s.Tb.final_error_v < 0.05)

let test_cmrr_psrr_positive () =
  (match Tb.cmrr_db Ota.default_params with
  | Some v -> Alcotest.(check bool) "cmrr plausible" true (v > 40. && v < 140.)
  | None -> Alcotest.fail "cmrr failed");
  match Tb.psrr_db Ota.default_params with
  | Some v -> Alcotest.(check bool) "psrr plausible" true (v > 30. && v < 140.)
  | None -> Alcotest.fail "psrr failed"

let test_input_noise () =
  match Tb.input_referred_noise Ota.default_params with
  | None -> Alcotest.fail "noise analysis failed"
  | Some (pairs, rms) ->
      Alcotest.(check bool) "rms positive" true (rms > 0.);
      Alcotest.(check bool) "rms sane (< 1 mV)" true (rms < 1e-3);
      (* 1/f noise: PSD at 10 Hz well above PSD at 1 MHz *)
      let psd_at f =
        let _, p =
          Array.fold_left
            (fun ((bd, _) as best) (fp, pp) ->
              if Float.abs (log (fp /. f)) < Float.abs (log (bd /. f)) then (fp, pp)
              else best)
            pairs.(0) pairs
        in
        p
      in
      Alcotest.(check bool) "flicker slope" true (psd_at 10. > 10. *. psd_at 1e6)

(* --- Verilog-A emitter --- *)

let synthetic_model () =
  let front =
    Array.init 10 (fun i ->
        let t = float_of_int i /. 9. in
        {
          Perf_model.gain_db = 45. +. (10. *. t);
          pm_deg = 85. -. (20. *. t);
          params = Array.make 8 (1e-6 *. (1. +. t));
          rout = 1e6;
          unity_gain_hz = 1e7;
        })
  in
  let var =
    Array.init 10 (fun i ->
        let t = float_of_int i /. 9. in
        {
          Var_model.gain_db = 45. +. (10. *. t);
          pm_deg = 85. -. (20. *. t);
          dgain_pct = 0.5;
          dpm_pct = 1.5;
          mc_samples = 100;
        })
  in
  Macromodel.create (Perf_model.create front) (Var_model.create var)

let test_verilog_a_module_text () =
  let text = Verilog_a.module_text ~control:"3E" () in
  List.iter
    (fun fragment ->
      if not (contains text fragment) then
        Alcotest.failf "module text missing %S" fragment)
    [
      "module ota_behavioural";
      "$table_model(gain, \"gain_delta.tbl\", \"3E\")";
      "$table_model(pm, \"pm_delta.tbl\", \"3E\")";
      "gain_prop = ((gain_delta/100)*gain) + gain";
      "lp1_data.tbl";
      "lp8_data.tbl";
      "V(out) <+ V(inp)*(-gain_in_v) - I(out)*ro";
      "endmodule";
    ]

let test_verilog_a_data_files () =
  let model = synthetic_model () in
  let files = Verilog_a.data_files model in
  Alcotest.(check int) "eleven tables" 11 (List.length files);
  let gain_delta = List.assoc "gain_delta.tbl" files in
  Alcotest.(check int) "variation rows" 10 (Tbl_io.n_rows gain_delta);
  (* every table round-trips through its textual form *)
  List.iter
    (fun (name, table) ->
      let back = Tbl_io.of_string (Tbl_io.to_string table) in
      if Tbl_io.n_rows back <> Tbl_io.n_rows table then
        Alcotest.failf "%s round trip changed row count" name)
    files

let test_verilog_a_save () =
  let model = synthetic_model () in
  let dir = Filename.temp_file "yieldlab" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let written = Verilog_a.save model ~dir in
      Alcotest.(check int) "module + 11 tables" 12 (List.length written);
      List.iter
        (fun path ->
          if not (Sys.file_exists path) then Alcotest.failf "%s missing" path)
        written)

(* --- guarded lookup --- *)

let test_lookup_guard_snaps_across_families () =
  (* two "families": identical performances trend but a parameter jump in
     the middle *)
  let front =
    Array.init 10 (fun i ->
        let t = float_of_int i /. 9. in
        let family_jump = if i >= 5 then 20e-6 else 0. in
        {
          Perf_model.gain_db = 45. +. (10. *. t);
          pm_deg = 85. -. (20. *. t);
          params = Array.make 8 (5e-6 +. (1e-6 *. t) +. family_jump);
          rout = 1e6;
          unity_gain_hz = 1e7;
        })
  in
  let model = Perf_model.create front in
  (* query halfway between the two families (between points 4 and 5) *)
  let gain_mid = 45. +. (10. *. (4.5 /. 9.)) in
  let pm_mid = 85. -. (20. *. (4.5 /. 9.)) in
  let guarded = Perf_model.lookup model ~gain_db:gain_mid ~pm_deg:pm_mid in
  let raw = Perf_model.lookup ~guard:false model ~gain_db:gain_mid ~pm_deg:pm_mid in
  (* raw interpolation blends the families (parameter ~ halfway between),
     the guard snaps to one of the measured designs *)
  let p_g = guarded.Perf_model.params.(0) in
  let p_r = raw.Perf_model.params.(0) in
  Alcotest.(check bool) "raw blends" true (p_r > 8e-6 && p_r < 24e-6);
  Alcotest.(check bool) "guarded snaps" true
    (Float.abs (p_g -. front.(4).Perf_model.params.(0)) < 1e-7
    || Float.abs (p_g -. front.(5).Perf_model.params.(0)) < 1e-7)

let suites =
  [
    ( "stats.lhs",
      [
        Alcotest.test_case "stratification" `Quick test_lhs_stratification;
        Alcotest.test_case "normal moments" `Quick test_lhs_normal_moments;
        Alcotest.test_case "variance reduction" `Slow test_lhs_variance_reduction;
      ] );
    ( "process.sensitivity",
      [
        Alcotest.test_case "global_draw_of_normals" `Quick test_global_draw_of_normals;
        Alcotest.test_case "linear model" `Quick test_sensitivity_linear_model;
        Alcotest.test_case "ota gain drivers" `Slow test_sensitivity_on_ota_gain;
      ] );
    ( "circuits.extended",
      [
        Alcotest.test_case "step response" `Slow test_step_response_slews;
        Alcotest.test_case "cmrr/psrr" `Quick test_cmrr_psrr_positive;
        Alcotest.test_case "input noise" `Slow test_input_noise;
      ] );
    ( "behavioural.verilog_a",
      [
        Alcotest.test_case "module text" `Quick test_verilog_a_module_text;
        Alcotest.test_case "data files" `Quick test_verilog_a_data_files;
        Alcotest.test_case "save" `Quick test_verilog_a_save;
      ] );
    ( "behavioural.lookup_guard",
      [
        Alcotest.test_case "family snapping" `Quick
          test_lookup_guard_snaps_across_families;
      ] );
  ]
