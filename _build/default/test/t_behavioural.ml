(* Tests for the yield_behavioural library: performance model, variation
   model, macromodel, yield targeting. *)

module Perf_model = Yield_behavioural.Perf_model
module Var_model = Yield_behavioural.Var_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target
module Filter = Yield_circuits.Filter
module Circuit = Yield_spice.Circuit
module Dcop = Yield_spice.Dcop
module Measure = Yield_spice.Measure

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

(* A synthetic monotone front: gain 40..60 dB while PM falls 90..50 deg,
   parameters varying smoothly, rout rising with gain. *)
let synthetic_front n =
  Array.init n (fun i ->
      let t = float_of_int i /. float_of_int (n - 1) in
      {
        Perf_model.gain_db = 40. +. (20. *. t);
        pm_deg = 90. -. (40. *. t);
        params = Array.init 8 (fun j -> 1e-6 *. (1. +. t +. (0.1 *. float_of_int j)));
        rout = 1e6 *. (1. +. (3. *. t));
        unity_gain_hz = 1e7 *. (2. -. t);
      })

let perf20 = Perf_model.create (synthetic_front 20)

let test_perf_model_ranges () =
  let glo, ghi = Perf_model.gain_range perf20 in
  check_float "gain lo" 40. glo;
  check_float "gain hi" 60. ghi;
  let plo, phi = Perf_model.pm_range perf20 in
  check_float "pm lo" 50. plo;
  check_float "pm hi" 90. phi;
  Alcotest.(check int) "size" 20 (Perf_model.size perf20)

let test_perf_model_lookup_on_front () =
  (* looking up a front point returns (approximately) its own parameters *)
  let p = (Perf_model.points perf20).(10) in
  let found =
    Perf_model.lookup perf20 ~gain_db:p.Perf_model.gain_db
      ~pm_deg:p.Perf_model.pm_deg
  in
  Array.iteri
    (fun j v -> check_float ~eps:1e-3 "param" p.Perf_model.params.(j) v)
    found.Perf_model.params;
  check_float ~eps:1e-3 "rout" p.Perf_model.rout found.Perf_model.rout

let test_perf_model_lookup_interpolates () =
  (* halfway between two front points in gain *)
  let pts = Perf_model.points perf20 in
  let a = pts.(5) and b = pts.(6) in
  let mid_gain = 0.5 *. (a.Perf_model.gain_db +. b.Perf_model.gain_db) in
  let mid_pm = 0.5 *. (a.Perf_model.pm_deg +. b.Perf_model.pm_deg) in
  let found = Perf_model.lookup perf20 ~gain_db:mid_gain ~pm_deg:mid_pm in
  Array.iteri
    (fun j v ->
      let expected = 0.5 *. (a.Perf_model.params.(j) +. b.Perf_model.params.(j)) in
      check_float ~eps:0.01 "interpolated param" expected v)
    found.Perf_model.params

let test_perf_model_pm_at_gain () =
  check_float ~eps:0.01 "front curve" 70. (Perf_model.pm_at_gain perf20 50.)

let test_perf_model_duplicates_merged () =
  let pts = Array.append (synthetic_front 5) (synthetic_front 5) in
  let m = Perf_model.create pts in
  Alcotest.(check int) "deduplicated" 5 (Perf_model.size m)

let test_perf_model_table_roundtrip () =
  let table = Perf_model.to_table perf20 in
  let m2 = Perf_model.of_table table in
  Alcotest.(check int) "size preserved" (Perf_model.size perf20) (Perf_model.size m2);
  let a = Perf_model.lookup perf20 ~gain_db:47.3 ~pm_deg:75.4 in
  let b = Perf_model.lookup m2 ~gain_db:47.3 ~pm_deg:75.4 in
  Array.iteri
    (fun j v -> check_float ~eps:1e-9 "same lookup" a.Perf_model.params.(j) v)
    b.Perf_model.params

let test_perf_model_too_few_points () =
  match Perf_model.create (synthetic_front 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single point accepted"

(* --- variation model --- *)

let synthetic_var n =
  Array.init n (fun i ->
      let t = float_of_int i /. float_of_int (n - 1) in
      {
        Var_model.gain_db = 40. +. (20. *. t);
        pm_deg = 90. -. (40. *. t);
        dgain_pct = 0.4 +. (0.2 *. t);
        dpm_pct = 1.2 +. (0.6 *. t);
        mc_samples = 200;
      })

let var20 = Var_model.create (synthetic_var 20)

let test_var_model_lookup () =
  check_float ~eps:0.02 "dgain mid" 0.5 (Var_model.dgain_at var20 ~gain_db:50.);
  (* pm = 70 corresponds to t = 0.5 -> dpm = 1.5 *)
  check_float ~eps:0.02 "dpm mid" 1.5 (Var_model.dpm_at var20 ~pm_deg:70.)

let test_var_model_no_extrapolation () =
  match Var_model.dgain_at var20 ~gain_db:10. with
  | exception Yield_table.Table1d.Out_of_range _ -> ()
  | _ -> Alcotest.fail "extrapolated beyond table"

let test_var_model_noise_robust () =
  (* many nearly coincident noisy points: interpolation must stay bounded *)
  let rng = Yield_stats.Rng.create 5 in
  let pts =
    Array.init 300 (fun i ->
        let t = float_of_int (i mod 3) *. 1e-4 in
        {
          Var_model.gain_db = 50. +. t +. (0.001 *. float_of_int i);
          pm_deg = 70. -. t -. (0.001 *. float_of_int i);
          dgain_pct = 0.5 +. (0.2 *. Yield_stats.Rng.gaussian rng);
          dpm_pct = 1.5 +. (0.5 *. Yield_stats.Rng.gaussian rng);
          mc_samples = 50;
        })
  in
  let m = Var_model.create pts in
  let v = Var_model.dgain_at m ~gain_db:50.15 in
  Alcotest.(check bool) "bounded" true (v >= 0. && v < 2.);
  let v2 = Var_model.dpm_at m ~pm_deg:69.9 in
  Alcotest.(check bool) "bounded pm" true (v2 >= 0. && v2 < 5.)

let test_var_model_table_roundtrip () =
  let t = Var_model.to_table var20 in
  let m2 = Var_model.of_table t in
  check_float ~eps:1e-6 "same dgain"
    (Var_model.dgain_at var20 ~gain_db:47.)
    (Var_model.dgain_at m2 ~gain_db:47.)

(* --- macromodel --- *)

let model = Macromodel.create perf20 var20

let test_propose_inflates () =
  match Macromodel.propose model ~gain_db:50. ~pm_deg:70. with
  | Error e -> Alcotest.fail e
  | Ok p ->
      (* gain_prop = gain (1 + delta/100) with delta ~ 0.5 % *)
      check_float ~eps:0.01 "gain inflated" (50. *. 1.005)
        p.Macromodel.proposed_gain_db;
      Alcotest.(check bool) "pm inflated" true
        (p.Macromodel.proposed_pm_deg > 70.);
      (* the proposed design realises at least the inflated gain *)
      check_float ~eps:0.02 "design at proposal"
        p.Macromodel.proposed_gain_db p.Macromodel.design.Perf_model.gain_db

let test_propose_out_of_range () =
  match Macromodel.propose model ~gain_db:100. ~pm_deg:70. with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected out-of-range error"

let test_amp_of_design () =
  let p = (Perf_model.points perf20).(3) in
  let amp = Macromodel.amp_of_design p in
  check_float "gain" p.Perf_model.gain_db amp.Filter.gain_db;
  check_float "rout" p.Perf_model.rout amp.Filter.rout

let test_macromodel_bode_single_pole () =
  let bode = Macromodel.bode ~gain_db:60. ~rout:1e6 ~load_cap:1e-12 () in
  check_float ~eps:1e-3 "dc" 60. (Measure.dc_gain_db bode);
  (match Measure.f3db bode with
  | Some f -> check_float ~eps:0.05 "pole" (1. /. (2. *. Float.pi *. 1e6 *. 1e-12)) f
  | None -> Alcotest.fail "no pole found");
  match Measure.phase_margin_deg bode with
  | Some pm -> check_float ~eps:0.02 "90 deg margin" 90. pm
  | None -> Alcotest.fail "no unity crossing"

let test_add_to_circuit () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VIN" ~ac:1. "in" "0" 0.;
  (match Macromodel.add_to_circuit model c ~name:"A1" ~gain_db:50. ~pm_deg:70.
           ~inp:"in" ~out:"out" with
  | Error e -> Alcotest.fail e
  | Ok proposal ->
      (match Dcop.solve c with
      | Error e -> Alcotest.failf "dcop: %s" (Dcop.error_to_string e)
      | Ok op ->
          let bode =
            Yield_spice.Ac.transfer_by_name c op ~out:"out" ~freqs:[| 1. |]
          in
          (* unloaded behavioural stage shows the proposed gain *)
          check_float ~eps:0.01 "realised gain"
            proposal.Macromodel.design.Perf_model.gain_db
            (Measure.dc_gain_db bode)))

(* --- yield targeting --- *)

let test_plan_meets_spec_worst_case () =
  let spec = { Yield_target.min_gain_db = 50.; min_pm_deg = 70. } in
  match Yield_target.plan model spec with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      (* the multiplicative inflation leaves a (d/100)^2 second-order term *)
      let tol_gain = 50. *. 1e-4 in
      Alcotest.(check bool) "worst-case gain clears spec" true
        (plan.Yield_target.worst_case_gain_db >= 50. -. tol_gain -. 1e-6);
      Alcotest.(check bool) "worst-case pm clears spec" true
        (plan.Yield_target.worst_case_pm_deg >= 70. -. (70. *. 3e-4));
      Alcotest.(check bool) "predicted yield ~ 1" true
        (Yield_target.predicted_yield plan > 0.99)

let test_meets () =
  let spec = { Yield_target.min_gain_db = 50.; min_pm_deg = 70. } in
  Alcotest.(check bool) "pass" true (Yield_target.meets spec ~gain_db:51. ~pm_deg:71.);
  Alcotest.(check bool) "fail gain" false (Yield_target.meets spec ~gain_db:49. ~pm_deg:71.);
  Alcotest.(check bool) "fail pm" false (Yield_target.meets spec ~gain_db:51. ~pm_deg:69.)

let suites =
  [
    ( "behavioural.perf_model",
      [
        Alcotest.test_case "ranges" `Quick test_perf_model_ranges;
        Alcotest.test_case "lookup on front" `Quick test_perf_model_lookup_on_front;
        Alcotest.test_case "lookup interpolates" `Quick
          test_perf_model_lookup_interpolates;
        Alcotest.test_case "pm at gain" `Quick test_perf_model_pm_at_gain;
        Alcotest.test_case "duplicates merged" `Quick
          test_perf_model_duplicates_merged;
        Alcotest.test_case "table roundtrip" `Quick test_perf_model_table_roundtrip;
        Alcotest.test_case "too few points" `Quick test_perf_model_too_few_points;
      ] );
    ( "behavioural.var_model",
      [
        Alcotest.test_case "lookup" `Quick test_var_model_lookup;
        Alcotest.test_case "no extrapolation" `Quick test_var_model_no_extrapolation;
        Alcotest.test_case "noise robust" `Quick test_var_model_noise_robust;
        Alcotest.test_case "table roundtrip" `Quick test_var_model_table_roundtrip;
      ] );
    ( "behavioural.macromodel",
      [
        Alcotest.test_case "propose inflates" `Quick test_propose_inflates;
        Alcotest.test_case "out of range" `Quick test_propose_out_of_range;
        Alcotest.test_case "amp_of_design" `Quick test_amp_of_design;
        Alcotest.test_case "single-pole bode" `Quick test_macromodel_bode_single_pole;
        Alcotest.test_case "add_to_circuit" `Quick test_add_to_circuit;
      ] );
    ( "behavioural.yield_target",
      [
        Alcotest.test_case "plan worst case" `Quick test_plan_meets_spec_worst_case;
        Alcotest.test_case "meets" `Quick test_meets;
      ] );
  ]
