(* Tests for the yield_stats library: RNG determinism, distributions,
   summary statistics. *)

module Rng = Yield_stats.Rng
module Dist = Yield_stats.Dist
module Summary = Yield_stats.Summary

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.float a = Rng.float b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = Array.init 32 (fun _ -> Rng.float parent) in
  let ys = Array.init 32 (fun _ -> Rng.float child) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_uniform_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng 2. 5. in
    if x < 2. || x >= 5. then Alcotest.fail "uniform out of range"
  done

let test_rng_int_range () =
  let rng = Rng.create 5 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let k = Rng.int rng 7 in
    if k < 0 || k >= 7 then Alcotest.fail "int out of range";
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all Fun.id seen)

let test_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let s = Summary.of_array xs in
  check_float ~eps:0.02 "mean" 0. (Summary.mean s);
  check_float ~eps:0.02 "stddev" 1. (Summary.stddev s)

let test_shuffle_permutes () =
  let rng = Rng.create 13 in
  let a = Array.init 20 Fun.id in
  let b = Array.copy a in
  Rng.shuffle_in_place rng b;
  Array.sort compare b;
  Alcotest.(check (array int)) "same multiset" a b

let test_erf_known_values () =
  check_float ~eps:1e-6 "erf 0" 0. (Dist.erf 0.);
  check_float ~eps:1e-5 "erf 1" 0.8427007929 (Dist.erf 1.);
  check_float ~eps:1e-5 "erf -1" (-0.8427007929) (Dist.erf (-1.));
  check_float ~eps:1e-6 "erf 3" 0.9999779095 (Dist.erf 3.)

let test_normal_cdf_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Dist.normal_quantile ~mean:1. ~sigma:2. p in
      check_float ~eps:1e-6
        (Printf.sprintf "roundtrip p=%g" p)
        p
        (Dist.normal_cdf ~mean:1. ~sigma:2. x))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_dist_means () =
  check_float "normal mean" 3. (Dist.mean (Normal { mean = 3.; sigma = 1. }));
  check_float "uniform mean" 2.5 (Dist.mean (Uniform { lo = 0.; hi = 5. }));
  check_float ~eps:1e-9 "triangular mean" 2.
    (Dist.mean (Triangular { lo = 0.; mode = 2.; hi = 4. }))

let prop_sample_within_support =
  QCheck.Test.make ~count:200 ~name:"uniform/triangular samples stay in support"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let u = Dist.sample (Uniform { lo = -1.; hi = 2. }) rng in
      let t = Dist.sample (Triangular { lo = 0.; mode = 1.; hi = 3. }) rng in
      u >= -1. && u < 2. && t >= 0. && t <= 3.)

let prop_cdf_monotone =
  QCheck.Test.make ~count:200 ~name:"normal cdf is monotone"
    QCheck.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Dist.normal_cdf ~mean:0. ~sigma:1. lo
      <= Dist.normal_cdf ~mean:0. ~sigma:1. hi +. 1e-12)

let test_sample_mean_matches_dist_mean () =
  let rng = Rng.create 17 in
  let d = Dist.Lognormal { mu = 0.1; sigma = 0.2 } in
  let xs = Array.init 40_000 (fun _ -> Dist.sample d rng) in
  let s = Summary.of_array xs in
  check_float ~eps:0.02 "lognormal sample mean" (Dist.mean d) (Summary.mean s)

let test_summary_welford () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Summary.mean s);
  check_float "variance" (32. /. 7.) (Summary.variance s);
  check_float "min" 2. (Summary.min_value s);
  check_float "max" 9. (Summary.max_value s);
  Alcotest.(check int) "count" 8 (Summary.count s)

let test_summary_empty () =
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean Summary.empty))

let test_quantiles () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Summary.median xs);
  check_float "q0" 1. (Summary.quantile xs 0.);
  check_float "q1" 5. (Summary.quantile xs 1.);
  check_float "q25" 2. (Summary.quantile xs 0.25)

let test_histogram () =
  let h = Summary.histogram ~bins:4 [| 0.; 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "bins" 4 (Array.length h.Summary.counts);
  Alcotest.(check int) "total" 5 (Array.fold_left ( + ) 0 h.Summary.counts);
  check_float "lo edge" 0. h.Summary.edges.(0);
  check_float "hi edge" 4. h.Summary.edges.(4)

let prop_quantile_bounds =
  QCheck.Test.make ~count:200 ~name:"quantile lies within sample range"
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-100.) 100.))
              (float_range 0.01 0.99))
    (fun (xs, p) ->
      match xs with
      | [] -> true
      | _ ->
          let a = Array.of_list xs in
          let q = Summary.quantile a p in
          let lo = Array.fold_left Float.min infinity a in
          let hi = Array.fold_left Float.max neg_infinity a in
          q >= lo -. 1e-12 && q <= hi +. 1e-12)

let suites =
  [
    ( "stats.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
      ] );
    ( "stats.dist",
      [
        Alcotest.test_case "erf known values" `Quick test_erf_known_values;
        Alcotest.test_case "cdf/quantile roundtrip" `Quick
          test_normal_cdf_quantile_roundtrip;
        Alcotest.test_case "distribution means" `Quick test_dist_means;
        Alcotest.test_case "sample mean" `Slow test_sample_mean_matches_dist_mean;
        QCheck_alcotest.to_alcotest prop_sample_within_support;
        QCheck_alcotest.to_alcotest prop_cdf_monotone;
      ] );
    ( "stats.summary",
      [
        Alcotest.test_case "welford" `Quick test_summary_welford;
        Alcotest.test_case "empty" `Quick test_summary_empty;
        Alcotest.test_case "quantiles" `Quick test_quantiles;
        Alcotest.test_case "histogram" `Quick test_histogram;
        QCheck_alcotest.to_alcotest prop_quantile_bounds;
      ] );
  ]
