(* Tests for transient analysis, waveform sources, time-domain measurements
   and noise analysis. *)

module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Dcop = Yield_spice.Dcop
module Tran = Yield_spice.Tran
module Mt = Yield_spice.Measure_tran
module Noise = Yield_spice.Noise
module Mosfet = Yield_spice.Mosfet
module Vec = Yield_numeric.Vec

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

(* --- waveforms --- *)

let test_waveform_constant () =
  check_float "constant" 3.3 (Device.waveform_value Device.Constant ~dc:3.3 5.)

let test_waveform_pulse () =
  let w =
    Device.Pulse
      { v1 = 0.; v2 = 1.; delay = 1.; rise = 0.5; fall = 0.5; width = 2.; period = 0. }
  in
  let at t = Device.waveform_value w ~dc:0. t in
  check_float "before delay" 0. (at 0.5);
  check_float "mid rise" 0.5 (at 1.25);
  check_float "plateau" 1. (at 2.);
  check_float "mid fall" 0.5 (at 3.75);
  check_float "after" 0. (at 5.)

let test_waveform_pulse_periodic () =
  let w =
    Device.Pulse
      { v1 = 0.; v2 = 1.; delay = 0.; rise = 0.1; fall = 0.1; width = 0.4; period = 1. }
  in
  let at t = Device.waveform_value w ~dc:0. t in
  check_float "first period plateau" 1. (at 0.3);
  check_float "second period plateau" 1. (at 1.3);
  check_float "second period low" 0. (at 1.8)

let test_waveform_sine () =
  let w = Device.Sine { offset = 1.; amplitude = 2.; freq = 50.; phase_deg = 0. } in
  let at t = Device.waveform_value w ~dc:0. t in
  check_float ~eps:1e-9 "zero crossing" 1. (at 0.);
  check_float ~eps:1e-9 "quarter period" 3. (at (1. /. 200.));
  check_float ~eps:1e-6 "full period" 1. (at (1. /. 50.))

(* --- transient engine --- *)

let rc_circuit () =
  let c = Circuit.create () in
  let wave =
    Device.Pulse
      { v1 = 0.; v2 = 1.; delay = 1e-4; rise = 1e-6; fall = 1e-6; width = 1.; period = 0. }
  in
  Circuit.add_vsource c ~name:"V1" ~wave "in" "0" 0.;
  Circuit.add_resistor c ~name:"R1" "in" "out" 1000.;
  Circuit.add_capacitor c ~name:"C1" "out" "0" 1e-6;
  c

let test_tran_rc_charging () =
  let c = rc_circuit () in
  match Tran.run (Tran.options ~t_stop:8e-3 ~dt:2e-5 ()) c with
  | Error e -> Alcotest.fail (Tran.error_to_string e)
  | Ok r ->
      let v = Tran.voltage_by_name r c "out" in
      check_float "starts discharged" 0. v.(0);
      let tau = 1e-3 in
      let at_tau = Mt.value_at ~times:r.Tran.times ~values:v (1e-4 +. tau) in
      check_float ~eps:0.01 "one tau" (1. -. exp (-1.)) at_tau;
      check_float ~eps:0.002 "fully charged" 1. (Mt.final_value ~values:v)

let test_tran_rc_analytic_rise () =
  let c = rc_circuit () in
  match Tran.run (Tran.options ~t_stop:8e-3 ~dt:2e-5 ()) c with
  | Error e -> Alcotest.fail (Tran.error_to_string e)
  | Ok r ->
      let v = Tran.voltage_by_name r c "out" in
      (match Mt.rise_time ~times:r.Tran.times ~values:v () with
      | Some t -> check_float ~eps:0.02 "10-90 rise = 2.2 tau" 2.2e-3 t
      | None -> Alcotest.fail "no rise time");
      (match Mt.settling_time ~times:r.Tran.times ~values:v () with
      | Some t ->
          (* 1 % settling of a first-order response: delay + ln(100) tau *)
          check_float ~eps:0.05 "settling" (1e-4 +. (log 100. *. 1e-3)) t
      | None -> Alcotest.fail "no settling");
      check_float ~eps:0.02 "no overshoot" 0.
        (Mt.overshoot_pct ~times:r.Tran.times ~values:v)

let test_tran_sine_through () =
  (* a sine source across a resistive divider keeps its amplitude halved *)
  let c = Circuit.create () in
  let wave = Device.Sine { offset = 1.; amplitude = 1.; freq = 1e3; phase_deg = 0. } in
  Circuit.add_vsource c ~name:"V1" ~wave "in" "0" 1.;
  Circuit.add_resistor c ~name:"R1" "in" "out" 1e3;
  Circuit.add_resistor c ~name:"R2" "out" "0" 1e3;
  match Tran.run (Tran.options ~t_stop:2e-3 ~dt:5e-6 ()) c with
  | Error e -> Alcotest.fail (Tran.error_to_string e)
  | Ok r ->
      let v = Tran.voltage_by_name r c "out" in
      let expected t = 0.5 *. (1. +. sin (2. *. Float.pi *. 1e3 *. t)) in
      Array.iteri
        (fun i t -> check_float ~eps:1e-6 "sine tracks" (expected t) v.(i))
        r.Tran.times

let test_tran_mos_inverter_switches () =
  (* a resistor-loaded NMOS inverter driven by a pulse must swing *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
  let wave =
    Device.Pulse
      { v1 = 0.; v2 = 3.3; delay = 1e-7; rise = 1e-8; fall = 1e-8; width = 1e-6; period = 0. }
  in
  Circuit.add_vsource c ~name:"VIN" ~wave "g" "0" 0.;
  Circuit.add_mosfet c ~name:"M1" ~d:"out" ~g:"g" ~s:"0" ~b:"0"
    ~model:Yield_process.Tech.c35.Yield_process.Tech.nmos ~w:10e-6 ~l:0.35e-6;
  Circuit.add_resistor c ~name:"RL" "vdd" "out" 10e3;
  Circuit.add_capacitor c ~name:"CL" "out" "0" 0.5e-12;
  match Tran.run (Tran.options ~t_stop:1e-6 ~dt:1e-9 ()) c with
  | Error e -> Alcotest.fail (Tran.error_to_string e)
  | Ok r ->
      let v = Tran.voltage_by_name r c "out" in
      check_float ~eps:0.01 "starts high" 3.3 v.(0);
      Alcotest.(check bool) "pulls low" true (Mt.final_value ~values:v < 0.5)

let test_tran_energy_conservation_linear () =
  (* with no source the capacitor holds its DC charge *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "in" "0" 2.;
  Circuit.add_resistor c ~name:"R1" "in" "out" 1e3;
  Circuit.add_capacitor c ~name:"C1" "out" "0" 1e-9;
  match Tran.run (Tran.options ~t_stop:1e-4 ~dt:1e-6 ()) c with
  | Error e -> Alcotest.fail (Tran.error_to_string e)
  | Ok r ->
      let v = Tran.voltage_by_name r c "out" in
      Array.iter (fun x -> check_float ~eps:1e-6 "steady" 2. x) v

let test_tran_options_validation () =
  (match Tran.options ~t_stop:0. ~dt:1e-6 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero t_stop accepted");
  match Tran.options ~t_stop:1e-6 ~dt:1e-3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dt > t_stop accepted"

(* --- measure_tran unit behaviour --- *)

let test_measure_tran_values () =
  let times = [| 0.; 1.; 2. |] and values = [| 0.; 2.; 2. |] in
  check_float "interp" 1. (Mt.value_at ~times ~values 0.5);
  check_float "clamp lo" 0. (Mt.value_at ~times ~values (-1.));
  check_float "clamp hi" 2. (Mt.value_at ~times ~values 9.);
  check_float "slew" 2. (Mt.slew_rate ~times ~values)

let test_measure_tran_overshoot () =
  let times = Array.init 101 (fun i -> float_of_int i /. 100.) in
  (* damped oscillation settling to 1 with a 1.3 peak *)
  let values =
    Array.map
      (fun t -> 1. -. (exp (-5. *. t) *. cos (20. *. t) *. 1.0) +. (0.3 *. exp (-20. *. t) *. sin (30. *. t)))
      times
  in
  let o = Mt.overshoot_pct ~times ~values in
  Alcotest.(check bool) "overshoot detected" true (o > 1.)

(* --- noise --- *)

let test_noise_resistor_psd () =
  let c = Circuit.create () in
  Circuit.add_resistor c ~name:"R1" "out" "0" 10e3;
  Circuit.add_capacitor c ~name:"C1" "out" "0" 1e-12;
  let op = match Dcop.solve c with Ok o -> o | Error _ -> Alcotest.fail "dc" in
  let pts =
    Noise.output_noise ~flicker:Noise.no_flicker c op
      ~out:(Circuit.node c "out") ~freqs:[| 1e3 |]
  in
  let expected = 4. *. 1.380649e-23 *. Noise.temperature *. 10e3 in
  check_float ~eps:1e-3 "4kTR" expected pts.(0).Noise.total_v2_per_hz

let test_noise_ktc () =
  let c = Circuit.create () in
  Circuit.add_resistor c ~name:"R1" "out" "0" 10e3;
  Circuit.add_capacitor c ~name:"C1" "out" "0" 1e-12;
  let op = match Dcop.solve c with Ok o -> o | Error _ -> Alcotest.fail "dc" in
  let freqs = Vec.logspace 1e3 1e12 300 in
  let pts =
    Noise.output_noise ~flicker:Noise.no_flicker c op
      ~out:(Circuit.node c "out") ~freqs
  in
  let pairs = Array.map (fun p -> (p.Noise.freq, p.Noise.total_v2_per_hz)) pts in
  let rms = Noise.integrate_rms pairs in
  check_float ~eps:0.01 "kT/C" (sqrt (1.380649e-23 *. Noise.temperature /. 1e-12)) rms

let test_noise_flicker_corner () =
  (* a MOS amplifier's flicker contribution dominates at low frequency and
     thermal at high frequency *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
  Circuit.add_vsource c ~name:"VIN" ~ac:1. "g" "0" 0.65;
  Circuit.add_mosfet c ~name:"M1" ~d:"out" ~g:"g" ~s:"0" ~b:"0"
    ~model:Yield_process.Tech.c35.Yield_process.Tech.nmos ~w:50e-6 ~l:1e-6;
  Circuit.add_resistor c ~name:"RL" "vdd" "out" 30e3;
  Circuit.nodeset c (Circuit.node c "out") 2.;
  let op = match Dcop.solve c with Ok o -> o | Error _ -> Alcotest.fail "dc" in
  let pts =
    Noise.output_noise c op ~out:(Circuit.node c "out") ~freqs:[| 10.; 1e7 |]
  in
  let flicker_share p =
    let f =
      List.fold_left
        (fun acc (co : Noise.contribution) ->
          match co.Noise.kind with
          | `Flicker -> acc +. co.Noise.psd_v2_per_hz
          | `Thermal -> acc)
        0. p.Noise.contributions
    in
    f /. p.Noise.total_v2_per_hz
  in
  Alcotest.(check bool) "flicker dominates at 10 Hz" true (flicker_share pts.(0) > 0.9);
  Alcotest.(check bool) "thermal dominates at 10 MHz" true (flicker_share pts.(1) < 0.1)

let test_noise_contributions_sorted () =
  let c = Circuit.create () in
  Circuit.add_resistor c ~name:"Rbig" "out" "0" 100e3;
  Circuit.add_resistor c ~name:"Rsmall" "out" "0" 1e3;
  let op = match Dcop.solve c with Ok o -> o | Error _ -> Alcotest.fail "dc" in
  let pts =
    Noise.output_noise ~flicker:Noise.no_flicker c op
      ~out:(Circuit.node c "out") ~freqs:[| 1e3 |]
  in
  match pts.(0).Noise.contributions with
  | first :: _ ->
      (* the small resistor injects more current noise; with equal transfer
         impedance it dominates the output *)
      Alcotest.(check string) "largest first" "Rsmall" first.Noise.device
  | [] -> Alcotest.fail "no contributions"

let suites =
  [
    ( "spice.waveform",
      [
        Alcotest.test_case "constant" `Quick test_waveform_constant;
        Alcotest.test_case "pulse" `Quick test_waveform_pulse;
        Alcotest.test_case "periodic pulse" `Quick test_waveform_pulse_periodic;
        Alcotest.test_case "sine" `Quick test_waveform_sine;
      ] );
    ( "spice.tran",
      [
        Alcotest.test_case "rc charging" `Quick test_tran_rc_charging;
        Alcotest.test_case "rc analytic rise/settle" `Quick test_tran_rc_analytic_rise;
        Alcotest.test_case "sine divider" `Quick test_tran_sine_through;
        Alcotest.test_case "mos inverter" `Quick test_tran_mos_inverter_switches;
        Alcotest.test_case "steady state" `Quick test_tran_energy_conservation_linear;
        Alcotest.test_case "options validation" `Quick test_tran_options_validation;
      ] );
    ( "spice.measure_tran",
      [
        Alcotest.test_case "values" `Quick test_measure_tran_values;
        Alcotest.test_case "overshoot" `Quick test_measure_tran_overshoot;
      ] );
    ( "spice.noise",
      [
        Alcotest.test_case "resistor psd" `Quick test_noise_resistor_psd;
        Alcotest.test_case "ktc" `Quick test_noise_ktc;
        Alcotest.test_case "flicker corner" `Quick test_noise_flicker_corner;
        Alcotest.test_case "contributions sorted" `Quick test_noise_contributions_sorted;
      ] );
  ]
