(* Tests for the second-topology machinery (Miller OTA via the generic
   testbench), the DC sweep analysis, and cross-analysis consistency. *)

module Miller = Yield_circuits.Miller
module Mtb = Yield_circuits.Miller_testbench
module Gtb = Yield_circuits.Testbench
module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Dcop = Yield_spice.Dcop
module Dcsweep = Yield_spice.Dcsweep
module Ac = Yield_spice.Ac
module Tran = Yield_spice.Tran

module Mosfet = Yield_spice.Mosfet
module Rng = Yield_stats.Rng
module Variation = Yield_process.Variation

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

let miller_conditions =
  { Gtb.default_conditions with Gtb.min_unity_gain_hz = 5e6 }

(* --- miller --- *)

let test_miller_two_stage_gain () =
  match Mtb.evaluate ~conditions:miller_conditions Miller.default_params with
  | None -> Alcotest.fail "miller evaluation failed"
  | Some p ->
      (* two gain stages: well above anything the single-stage OTA reaches *)
      Alcotest.(check bool) "two-stage gain" true (p.Gtb.gain_db > 70.);
      Alcotest.(check bool) "finite pm" true (Float.is_finite p.Gtb.phase_margin_deg)

let test_miller_bias_point () =
  let c, _ = Mtb.build ~conditions:miller_conditions Miller.default_params in
  match Dcop.solve c with
  | Error e -> Alcotest.failf "miller dcop: %s" (Dcop.error_to_string e)
  | Ok op ->
      let m8 = Dcop.mos_op op "x1.M8" in
      check_float ~eps:0.02 "bias current" Miller.bias_current m8.Mosfet.ids;
      (* output near the common mode thanks to the DC loop *)
      check_float ~eps:0.05 "out biased" 1.65 (Dcop.voltage_by_name op c "out");
      (* the second stage carries real current *)
      let m6 = Dcop.mos_op op "x1.M6" in
      Alcotest.(check bool) "stage-2 current flows" true (m6.Mosfet.ids > 1e-6)

let test_miller_compensation_tradeoff () =
  (* a larger output sink (higher second-pole frequency) buys phase margin *)
  let base =
    Mtb.evaluate ~conditions:miller_conditions Miller.default_params
  in
  let big_sink =
    Mtb.evaluate ~conditions:miller_conditions
      { Miller.default_params with Miller.w3 = 60e-6; l3 = 0.35e-6 }
  in
  match (base, big_sink) with
  | Some a, Some b ->
      Alcotest.(check bool) "pm improves with sink gm" true
        (b.Gtb.phase_margin_deg > a.Gtb.phase_margin_deg +. 5.)
  | _ -> Alcotest.fail "evaluation failed"

let test_miller_mc_sampling () =
  let rng = Rng.create 3 in
  match
    Mtb.evaluate_sampled ~conditions:miller_conditions
      ~spec:Variation.default_spec ~rng Miller.default_params
  with
  | None -> Alcotest.fail "sampled evaluation failed"
  | Some p ->
      Alcotest.(check bool) "gain close to nominal" true
        (Float.abs (p.Gtb.gain_db -. 87.5) < 5.)

let test_generic_testbench_consistency () =
  (* Ota_testbench is Testbench.Make(Ota): both paths give identical
     results *)
  let module Fresh = Yield_circuits.Testbench.Make (Ota) in
  let a = Tb.evaluate Ota.default_params in
  let b = Fresh.evaluate Ota.default_params in
  match (a, b) with
  | Some a, Some b -> check_float "same gain" a.Tb.gain_db b.Gtb.gain_db
  | _ -> Alcotest.fail "evaluation failed"

(* --- dc sweep --- *)

let divider () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VIN" "in" "0" 0.;
  Circuit.add_resistor c ~name:"R1" "in" "out" 1000.;
  Circuit.add_resistor c ~name:"R2" "out" "0" 1000.;
  c

let test_sweep_linear () =
  let c = divider () in
  let values = Yield_numeric.Vec.linspace (-2.) 2. 21 in
  match Dcsweep.run c ~source:"VIN" ~values with
  | Error e -> Alcotest.fail (Dcop.error_to_string e)
  | Ok s ->
      let out = Dcsweep.voltage_by_name s c "out" in
      Array.iteri
        (fun i _ -> check_float ~eps:1e-9 "half input" (values.(i) /. 2.) out.(i))
        values

let test_sweep_crossing_and_range () =
  let sweep = [| 0.; 1.; 2.; 3. |] and output = [| -2.; -1.; 1.; 3. |] in
  (match Dcsweep.crossing_input ~sweep ~output ~level:0. with
  | Some x -> check_float "zero crossing" 1.5 x
  | None -> Alcotest.fail "crossing not found");
  let lo, hi = Dcsweep.output_range output in
  check_float "lo" (-2.) lo;
  check_float "hi" 3. hi

let test_sweep_rejects_non_source () =
  let c = divider () in
  match Dcsweep.run c ~source:"R1" ~values:[| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "swept a resistor"

let test_sweep_ota_transfer_curve () =
  (* open-loop OTA comparator-style transfer: sweep the non-inverting input
     with the inverting input held at vcm; the output must swing and cross
     vcm near zero differential input *)
  let c = Circuit.create () in
  let tech = Yield_process.Tech.c35 in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" tech.Yield_process.Tech.vdd;
  Circuit.add_vsource c ~name:"VREF" "vm" "0" 1.65;
  Circuit.add_vsource c ~name:"VIN" "vp" "0" 1.65;
  Ota.add c ~prefix:"x1." ~tech ~params:Ota.default_params ~inp:"vm" ~inn:"vp"
    ~out:"out" ~vdd:"vdd" ~vss:"0";
  Circuit.nodeset c (Circuit.node c "out") 1.65;
  let values = Yield_numeric.Vec.linspace 1.55 1.75 41 in
  match Dcsweep.run c ~source:"VIN" ~values with
  | Error e -> Alcotest.fail (Dcop.error_to_string e)
  | Ok s ->
      let out = Dcsweep.voltage_by_name s c "out" in
      let lo, hi = Dcsweep.output_range out in
      Alcotest.(check bool) "output swings" true (hi -. lo > 2.);
      (match Dcsweep.crossing_input ~sweep:values ~output:out ~level:1.65 with
      | Some x ->
          (* offset within a few millivolts of zero differential *)
          Alcotest.(check bool) "offset small" true (Float.abs (x -. 1.65) < 0.01)
      | None -> Alcotest.fail "no crossing");
      (* monotone rising transfer (non-inverting input swept) *)
      let monotone = ref true in
      for i = 1 to Array.length out - 1 do
        if out.(i) < out.(i - 1) -. 1e-6 then monotone := false
      done;
      Alcotest.(check bool) "monotone" true !monotone

(* --- cross-analysis consistency: transient sine vs AC magnitude --- *)

let test_tran_matches_ac () =
  (* drive an RC lowpass with a sine at its corner frequency: the transient
     steady-state amplitude must match |H| from the AC analysis *)
  let r = 1e3 and cap = 1e-7 in
  let fc = 1. /. (2. *. Float.pi *. r *. cap) in
  let build ac wave =
    let c = Circuit.create () in
    Circuit.add_vsource c ~name:"VIN" ~ac ?wave "in" "0" 0.;
    Circuit.add_resistor c ~name:"R1" "in" "out" r;
    Circuit.add_capacitor c ~name:"C1" "out" "0" cap;
    c
  in
  (* AC magnitude at fc *)
  let c_ac = build 1. None in
  let op = match Dcop.solve c_ac with Ok o -> o | Error _ -> Alcotest.fail "dc" in
  let bode = Ac.transfer_by_name c_ac op ~out:"out" ~freqs:[| fc |] in
  let mag_ac = Complex.norm bode.Ac.response.(0) in
  (* transient steady state: simulate 12 periods, measure the amplitude over
     the last four *)
  let wave = Device.Sine { offset = 0.; amplitude = 1.; freq = fc; phase_deg = 0. } in
  let t_stop = 12. /. fc in
  let c_tr = build 0. (Some wave) in
  match Tran.run (Tran.options ~t_stop ~dt:(1. /. fc /. 200.) ()) c_tr with
  | Error e -> Alcotest.fail (Tran.error_to_string e)
  | Ok result ->
      let v = Tran.voltage_by_name result c_tr "out" in
      let n = Array.length v in
      let tail = Array.sub v (n - (n / 3)) (n / 3) in
      let amplitude =
        (Array.fold_left Float.max neg_infinity tail
        -. Array.fold_left Float.min infinity tail)
        /. 2.
      in
      check_float ~eps:0.01 "transient amplitude = |H|" mag_ac amplitude

let suites =
  [
    ( "circuits.miller",
      [
        Alcotest.test_case "two-stage gain" `Quick test_miller_two_stage_gain;
        Alcotest.test_case "bias point" `Quick test_miller_bias_point;
        Alcotest.test_case "compensation tradeoff" `Quick
          test_miller_compensation_tradeoff;
        Alcotest.test_case "mc sampling" `Quick test_miller_mc_sampling;
        Alcotest.test_case "generic testbench" `Quick
          test_generic_testbench_consistency;
      ] );
    ( "spice.dcsweep",
      [
        Alcotest.test_case "linear divider" `Quick test_sweep_linear;
        Alcotest.test_case "crossing and range" `Quick test_sweep_crossing_and_range;
        Alcotest.test_case "rejects non-source" `Quick test_sweep_rejects_non_source;
        Alcotest.test_case "ota transfer curve" `Quick test_sweep_ota_transfer_curve;
      ] );
    ( "spice.consistency",
      [ Alcotest.test_case "transient sine vs AC" `Quick test_tran_matches_ac ] );
  ]
