(* Tests for the yield_numeric library: vectors, matrices, LU, complex
   solves, root finding. *)

module Vec = Yield_numeric.Vec
module Mat = Yield_numeric.Mat
module Lu = Yield_numeric.Lu
module Cmat = Yield_numeric.Cmat
module Rootfind = Yield_numeric.Rootfind

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?(eps = 1e-9) what expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

let test_vec_basics () =
  let v = Vec.init 4 float_of_int in
  check_float "dot" 14. (Vec.dot v v);
  check_float "norm2" (sqrt 14.) (Vec.norm2 v);
  check_float "norm_inf" 3. (Vec.norm_inf v);
  let w = Vec.scale 2. v in
  check_float "scale" 6. w.(3);
  Vec.axpy ~alpha:(-2.) ~x:v ~y:w;
  check_float "axpy zeroes" 0. (Vec.norm_inf w)

let test_vec_linspace () =
  let v = Vec.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Vec.dim v);
  check_float "first" 0. v.(0);
  check_float "mid" 0.5 v.(2);
  check_float "last" 1. v.(4);
  let lg = Vec.logspace 1. 1000. 4 in
  check_float "log second" 10. lg.(1);
  Alcotest.check_raises "linspace n=1" (Invalid_argument
    "Vec.linspace: need at least two points") (fun () ->
      ignore (Vec.linspace 0. 1. 1))

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19. (Mat.get c 0 0);
  check_float "c01" 22. (Mat.get c 0 1);
  check_float "c10" 43. (Mat.get c 1 0);
  check_float "c11" 50. (Mat.get c 1 1);
  let v = Mat.mul_vec a [| 1.; 1. |] in
  check_float "mul_vec" 3. v.(0)

let test_mat_transpose () =
  let a = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  check_float "t21" 6. (Mat.get t 2 1)

let test_lu_solves_identity () =
  let a = Mat.identity 5 in
  let b = Vec.init 5 (fun i -> float_of_int (i + 1)) in
  let x = Lu.solve_system a b in
  check_float "identity solve" 0. (Vec.max_abs_diff x b)

let test_lu_known_system () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Lu.solve_system a [| 5.; 10. |] in
  check_float "x" 1. x.(0);
  check_float "y" 3. x.(1)

let test_lu_pivoting () =
  (* zero top-left pivot forces a row exchange *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Lu.solve_system a [| 2.; 3. |] in
  check_float "x" 3. x.(0);
  check_float "y" 2. x.(1)

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  match Lu.factor a with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_lu_det () =
  let a = Mat.of_arrays [| [| 3.; 1. |]; [| 2.; 5. |] |] in
  check_float "det" 13. (Lu.det (Lu.factor a))

let prop_lu_random_solve =
  QCheck.Test.make ~count:200 ~name:"lu solves random diagonally dominant systems"
    QCheck.(pair (int_bound 1000000) (int_range 1 12))
    (fun (seed, n) ->
      let st = Random.State.make [| seed |] in
      let a =
        Mat.init n n (fun i j ->
            let v = Random.State.float st 2. -. 1. in
            if i = j then v +. float_of_int n *. 2. else v)
      in
      let x_true = Array.init n (fun _ -> Random.State.float st 4. -. 2.) in
      let b = Mat.mul_vec a x_true in
      let x = Lu.solve_system a b in
      Vec.max_abs_diff x x_true < 1e-8)

let test_cmat_solve () =
  (* (1 + j) x = 2 -> x = 1 - j *)
  let m = Cmat.create 1 1 in
  Cmat.set m 0 0 { Complex.re = 1.; im = 1. };
  let x = Cmat.solve m [| { Complex.re = 2.; im = 0. } |] in
  check_float "re" 1. x.(0).Complex.re;
  check_float "im" (-1.) x.(0).Complex.im

let prop_cmat_random_solve =
  QCheck.Test.make ~count:100 ~name:"complex lu solves random systems"
    QCheck.(pair (int_bound 1000000) (int_range 1 8))
    (fun (seed, n) ->
      let st = Random.State.make [| seed |] in
      let m = Cmat.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let re = Random.State.float st 2. -. 1. in
          let im = Random.State.float st 2. -. 1. in
          let re = if i = j then re +. (3. *. float_of_int n) else re in
          Cmat.set m i j { Complex.re = re; im }
        done
      done;
      let x_true =
        Array.init n (fun _ ->
            {
              Complex.re = Random.State.float st 2. -. 1.;
              im = Random.State.float st 2. -. 1.;
            })
      in
      let b = Cmat.mul_vec m x_true in
      let x = Cmat.solve m b in
      let err = ref 0. in
      for i = 0 to n - 1 do
        err := Float.max !err (Complex.norm (Complex.sub x.(i) x_true.(i)))
      done;
      !err < 1e-8)

let test_cmat_of_real () =
  let g = Mat.of_arrays [| [| 1. |] |] in
  let c = Mat.of_arrays [| [| 2. |] |] in
  let m = Cmat.of_real ~imag_scale:3. g c in
  let z = Cmat.get m 0 0 in
  check_float "re" 1. z.Complex.re;
  check_float "im" 6. z.Complex.im

let test_bisect () =
  let root = Rootfind.bisect (fun x -> (x *. x) -. 2.) 0. 2. in
  check_float ~eps:1e-9 "sqrt2" (sqrt 2.) root

let test_brent () =
  let root = Rootfind.brent (fun x -> cos x -. x) 0. 1.5 in
  check_float ~eps:1e-9 "dottie" 0.7390851332151607 root

let test_brent_bad_bracket () =
  match Rootfind.brent (fun x -> x +. 10.) 0. 1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_brent_polynomial =
  QCheck.Test.make ~count:200 ~name:"brent finds roots of shifted cubics"
    QCheck.(float_range (-5.) 5.)
    (fun r ->
      let f x = ((x -. r) ** 3.) +. (x -. r) in
      let root = Rootfind.brent f (r -. 7.) (r +. 7.) in
      Float.abs (root -. r) < 1e-6)

let suites =
  [
    ( "numeric.vec",
      [
        Alcotest.test_case "basics" `Quick test_vec_basics;
        Alcotest.test_case "linspace/logspace" `Quick test_vec_linspace;
      ] );
    ( "numeric.mat",
      [
        Alcotest.test_case "mul" `Quick test_mat_mul;
        Alcotest.test_case "transpose" `Quick test_mat_transpose;
      ] );
    ( "numeric.lu",
      [
        Alcotest.test_case "identity" `Quick test_lu_solves_identity;
        Alcotest.test_case "known 2x2" `Quick test_lu_known_system;
        Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
        Alcotest.test_case "singular" `Quick test_lu_singular;
        Alcotest.test_case "determinant" `Quick test_lu_det;
        QCheck_alcotest.to_alcotest prop_lu_random_solve;
      ] );
    ( "numeric.cmat",
      [
        Alcotest.test_case "1x1 complex" `Quick test_cmat_solve;
        Alcotest.test_case "of_real" `Quick test_cmat_of_real;
        QCheck_alcotest.to_alcotest prop_cmat_random_solve;
      ] );
    ( "numeric.rootfind",
      [
        Alcotest.test_case "bisect" `Quick test_bisect;
        Alcotest.test_case "brent" `Quick test_brent;
        Alcotest.test_case "bad bracket" `Quick test_brent_bad_bracket;
        QCheck_alcotest.to_alcotest prop_brent_polynomial;
      ] );
  ]
