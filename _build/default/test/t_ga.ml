(* Tests for the yield_ga library: genome encoding, operators, the eq. 4/5
   machinery, Pareto extraction, the GA engine, WBGA and NSGA-II. *)

module Genome = Yield_ga.Genome
module Operators = Yield_ga.Operators
module Fitness = Yield_ga.Fitness
module Pareto = Yield_ga.Pareto
module Ga = Yield_ga.Ga
module Wbga = Yield_ga.Wbga
module Nsga2 = Yield_ga.Nsga2
module Rng = Yield_stats.Rng

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

let enc2 =
  Genome.encoding
    [| Genome.range "a" ~lo:0. ~hi:10.; Genome.range "b" ~lo:(-1.) ~hi:1. |]
    ~n_weights:2

(* --- genome --- *)

let test_genome_decode () =
  let g = [| 0.5; 0.25; 0.3; 0.1 |] in
  let p = Genome.params enc2 g in
  check_float "a" 5. p.(0);
  check_float "b" (-0.5) p.(1);
  let w = Genome.weights enc2 g in
  check_float "w0" 0.75 w.(0);
  check_float "w1" 0.25 w.(1)

let test_genome_weights_normalised () =
  (* equation (4): weights always sum to one *)
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    let g = Genome.random enc2 rng in
    let w = Genome.weights enc2 g in
    check_float ~eps:1e-12 "sum" 1. (Array.fold_left ( +. ) 0. w)
  done

let test_genome_zero_weights_uniform () =
  let g = [| 0.5; 0.5; 0.; 0. |] in
  let w = Genome.weights enc2 g in
  check_float "uniform" 0.5 w.(0)

let test_genome_log_range () =
  let enc =
    Genome.encoding [| Genome.log_range "c" ~lo:1e-12 ~hi:1e-9 |] ~n_weights:0
  in
  check_float ~eps:1e-9 "lo" 1e-12 (Genome.params enc [| 0. |]).(0);
  check_float ~eps:1e-9 "hi" 1e-9 (Genome.params enc [| 1. |]).(0);
  (* midpoint of a log range is the geometric mean *)
  check_float ~eps:1e-6 "geometric mid" (sqrt (1e-12 *. 1e-9))
    (Genome.params enc [| 0.5 |]).(0)

let test_genome_roundtrip () =
  let params = [| 7.5; 0.2 |] and weights = [| 0.6; 0.4 |] in
  let g = Genome.of_params enc2 ~params ~weights in
  let p = Genome.params enc2 g in
  check_float ~eps:1e-12 "a roundtrip" 7.5 p.(0);
  check_float ~eps:1e-12 "b roundtrip" 0.2 p.(1);
  let w = Genome.weights enc2 g in
  check_float ~eps:1e-9 "w roundtrip" 0.6 w.(0)

let test_genome_bad_range () =
  match Genome.range "x" ~lo:1. ~hi:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of empty range"

(* --- operators --- *)

let test_tournament_prefers_best () =
  let rng = Rng.create 3 in
  let fitness = [| 0.1; 0.9; 0.5 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Operators.select (Operators.Tournament 2) rng ~fitness in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "best wins most" true
    (counts.(1) > counts.(0) && counts.(1) > counts.(2))

let test_roulette_proportional () =
  (* roulette shifts fitnesses by the minimum, so the worst individual gets
     (almost) zero probability and equal fitnesses split evenly *)
  let rng = Rng.create 5 in
  let pick_counts fitness n =
    let counts = Array.make (Array.length fitness) 0 in
    for _ = 1 to n do
      let i = Operators.select Operators.Roulette rng ~fitness in
      counts.(i) <- counts.(i) + 1
    done;
    counts
  in
  let skewed = pick_counts [| 1.; 3. |] 2000 in
  Alcotest.(check bool) "better dominates" true (skewed.(1) > 1900);
  let uniform = pick_counts [| 2.; 2.; 2.; 2. |] 4000 in
  Array.iter
    (fun c -> Alcotest.(check bool) "balanced" true (c > 800 && c < 1200))
    uniform

let test_one_point_crossover () =
  let rng = Rng.create 7 in
  let a = Array.make 6 0. and b = Array.make 6 1. in
  let c1, c2 = Operators.cross Operators.One_point rng a b in
  (* children are complementary and contain a single switch point *)
  Array.iteri (fun i x -> check_float "complementary" 1. (x +. c2.(i))) c1;
  let switches = ref 0 in
  for i = 1 to 5 do
    if c1.(i) <> c1.(i - 1) then incr switches
  done;
  Alcotest.(check int) "single switch" 1 !switches

let prop_crossover_in_bounds =
  QCheck.Test.make ~count:200 ~name:"crossover children stay in [0,1]"
    QCheck.(triple (int_bound 100000) (int_range 0 3) (int_range 2 12))
    (fun (seed, which, n) ->
      let rng = Rng.create seed in
      let a = Array.init n (fun _ -> Rng.float rng) in
      let b = Array.init n (fun _ -> Rng.float rng) in
      let op =
        match which with
        | 0 -> Operators.One_point
        | 1 -> Operators.Uniform 0.5
        | 2 -> Operators.Blend 0.5
        | _ -> Operators.Sbx 10.
      in
      let c1, c2 = Operators.cross op rng a b in
      let ok g = Array.for_all (fun x -> x >= 0. && x <= 1.) g in
      ok c1 && ok c2)

let prop_mutation_in_bounds =
  QCheck.Test.make ~count:200 ~name:"mutation keeps genes in [0,1]"
    QCheck.(pair (int_bound 100000) (int_range 0 2))
    (fun (seed, which) ->
      let rng = Rng.create seed in
      let g = Array.init 8 (fun _ -> Rng.float rng) in
      let op =
        match which with
        | 0 -> Operators.Gaussian { sigma = 0.5; rate = 1. }
        | 1 -> Operators.Uniform_reset { rate = 1. }
        | _ -> Operators.Polynomial { eta = 5.; rate = 1. }
      in
      Operators.mutate op rng g;
      Array.for_all (fun x -> x >= 0. && x <= 1.) g)

(* --- fitness --- *)

let test_fitness_normalisation () =
  let n = Fitness.create 2 in
  Fitness.observe n [| 0.; 10. |];
  Fitness.observe n [| 10.; 20. |];
  let normed = Fitness.normalise n [| 5.; 15. |] in
  check_float "mid" 0.5 normed.(0);
  check_float "mid2" 0.5 normed.(1);
  (* equation (5) *)
  check_float "weighted" 0.5
    (Fitness.weighted_sum n ~weights:[| 0.3; 0.7 |] [| 5.; 15. |]);
  check_float "max scores 1" 1.
    (Fitness.weighted_sum n ~weights:[| 0.5; 0.5 |] [| 10.; 20. |])

let test_fitness_degenerate () =
  let n = Fitness.create 1 in
  Fitness.observe n [| 3. |];
  check_float "degenerate bounds -> 0.5" 0.5 (Fitness.normalise n [| 3. |]).(0)

let test_fitness_nonfinite () =
  let n = Fitness.create 1 in
  Fitness.observe n [| 1. |];
  Fitness.observe n [| nan |];
  Alcotest.(check int) "nan ignored" 1 (Fitness.observed n);
  Alcotest.(check bool) "nan scores -inf" true
    (Fitness.weighted_sum n ~weights:[| 1. |] [| nan |] = neg_infinity)

(* --- pareto --- *)

let test_dominates () =
  let m = [| true; true |] in
  Alcotest.(check bool) "strict" true (Pareto.dominates ~maximise:m [| 2.; 2. |] [| 1.; 1. |]);
  Alcotest.(check bool) "partial" true (Pareto.dominates ~maximise:m [| 2.; 1. |] [| 1.; 1. |]);
  Alcotest.(check bool) "equal" false (Pareto.dominates ~maximise:m [| 1.; 1. |] [| 1.; 1. |]);
  Alcotest.(check bool) "tradeoff" false (Pareto.dominates ~maximise:m [| 2.; 0. |] [| 1.; 1. |]);
  Alcotest.(check bool) "minimise flips" true
    (Pareto.dominates ~maximise:[| false; false |] [| 1.; 1. |] [| 2.; 2. |])

let test_front_2d_known () =
  let points = [| [| 1.; 5. |]; [| 2.; 4. |]; [| 3.; 1. |]; [| 2.; 3. |]; [| 0.; 6. |] |] in
  let front = Pareto.front_2d points in
  Alcotest.(check (list int)) "front indices" [ 0; 1; 2; 4 ] front

let test_front_2d_duplicates_kept () =
  let points = [| [| 1.; 1. |]; [| 1.; 1. |]; [| 0.; 0. |] |] in
  let front = Pareto.front_2d points in
  Alcotest.(check (list int)) "duplicates kept" [ 0; 1 ] front

let prop_front_matches_naive =
  QCheck.Test.make ~count:100 ~name:"front_2d agrees with O(n^2) dominance"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 40 in
      let points =
        Array.init n (fun _ -> [| Rng.float rng; Rng.float rng |])
      in
      let fast = Pareto.front_2d points in
      let naive = Pareto.non_dominated ~maximise:[| true; true |] points in
      fast = naive)

let prop_front_mutually_nondominated =
  QCheck.Test.make ~count:100 ~name:"front members do not dominate each other"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 30 in
      let points = Array.init n (fun _ -> [| Rng.float rng; Rng.float rng |]) in
      let front = Pareto.front_2d points in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              i = j
              || not (Pareto.dominates ~maximise:[| true; true |] points.(i) points.(j)))
            front)
        front)

let test_crowding_boundaries_infinite () =
  let points = [| [| 0.; 3. |]; [| 1.; 2. |]; [| 2.; 1. |]; [| 3.; 0. |] |] in
  let d = Pareto.crowding_distance points [| 0; 1; 2; 3 |] in
  Alcotest.(check bool) "first infinite" true (d.(0) = infinity);
  Alcotest.(check bool) "last infinite" true (d.(3) = infinity);
  Alcotest.(check bool) "middle finite" true (Float.is_finite d.(1))

let test_hypervolume_known () =
  (* single point (1,1) with ref (0,0): unit square *)
  check_float "unit square" 1. (Pareto.hypervolume_2d ~ref_point:(0., 0.) [| [| 1.; 1. |] |]);
  (* staircase of two points *)
  check_float "staircase" 3.
    (Pareto.hypervolume_2d ~ref_point:(0., 0.) [| [| 2.; 1. |]; [| 1.; 2. |] |])

let prop_hypervolume_monotone =
  QCheck.Test.make ~count:100 ~name:"adding a point never shrinks hypervolume"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 10 in
      let points =
        Array.init n (fun _ -> [| Rng.float rng +. 0.1; Rng.float rng +. 0.1 |])
      in
      let hv_all = Pareto.hypervolume_2d ~ref_point:(0., 0.) points in
      let hv_less =
        Pareto.hypervolume_2d ~ref_point:(0., 0.) (Array.sub points 0 (n - 1))
      in
      hv_all >= hv_less -. 1e-12)

(* --- engine --- *)

let sphere_encoding =
  Genome.encoding
    (Array.init 4 (fun i ->
         Genome.range (Printf.sprintf "x%d" i) ~lo:(-5.) ~hi:5.))
    ~n_weights:0

let test_ga_optimises_sphere () =
  let score population =
    Array.map
      (fun g ->
        let p = Genome.params sphere_encoding g in
        let loss = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. p in
        ((), -.loss))
      population
  in
  let config = { Ga.default_config with Ga.population_size = 40; generations = 60 } in
  let r = Ga.run config sphere_encoding (Rng.create 9) ~score in
  Alcotest.(check bool) "near optimum" true (r.Ga.best.Ga.fitness > -0.1);
  Alcotest.(check int) "all evaluations archived" (40 * 60)
    (Array.length r.Ga.archive);
  (* history is the running best: must be non-decreasing *)
  let monotone = ref true in
  for i = 1 to Array.length r.Ga.history - 1 do
    if r.Ga.history.(i) < r.Ga.history.(i - 1) then monotone := false
  done;
  Alcotest.(check bool) "history monotone" true !monotone

let test_ga_deterministic () =
  let score population =
    Array.map (fun g -> ((), -.Float.abs (g.(0) -. 0.3))) population
  in
  let config = { Ga.default_config with Ga.population_size = 10; generations = 5 } in
  let run () = (Ga.run config sphere_encoding (Rng.create 42) ~score).Ga.best.Ga.fitness in
  check_float "same seeds same result" (run ()) (run ())

(* --- wbga on a known front --- *)

(* objectives f1 = x, f2 = 1 - x^2 on x in [0,1]: the true Pareto front is
   every x (f2 strictly decreases as f1 increases) *)
let test_wbga_finds_tradeoff () =
  let r =
    Wbga.run
      ~config:{ Ga.default_config with Ga.population_size = 30; generations = 30 }
      ~param_ranges:[| Genome.range "x" ~lo:0. ~hi:1. |]
      ~objectives:
        [| { Wbga.name = "f1"; maximise = true }; { Wbga.name = "f2"; maximise = true } |]
      ~rng:(Rng.create 13)
      ~evaluate:(fun p -> Some [| p.(0); 1. -. (p.(0) *. p.(0)) |])
      ()
  in
  Alcotest.(check bool) "front nonempty" true (Array.length r.Wbga.front > 10);
  Alcotest.(check int) "evaluations" (30 * 30) r.Wbga.evaluations;
  (* the front must be sorted by f1 and decreasing in f2 *)
  let sorted = ref true in
  for i = 1 to Array.length r.Wbga.front - 1 do
    if r.Wbga.front.(i).Wbga.objectives.(0) < r.Wbga.front.(i - 1).Wbga.objectives.(0)
    then sorted := false;
    if r.Wbga.front.(i).Wbga.objectives.(1) > r.Wbga.front.(i - 1).Wbga.objectives.(1)
    then sorted := false
  done;
  Alcotest.(check bool) "front sorted and monotone" true !sorted;
  (* both ends of the trade-off explored *)
  let f1s = Array.map (fun e -> e.Wbga.objectives.(0)) r.Wbga.front in
  Alcotest.(check bool) "covers low end" true
    (Array.fold_left Float.min infinity f1s < 0.3);
  Alcotest.(check bool) "covers high end" true
    (Array.fold_left Float.max neg_infinity f1s > 0.9)

let test_wbga_failures_counted () =
  let r =
    Wbga.run
      ~config:{ Ga.default_config with Ga.population_size = 10; generations = 3 }
      ~param_ranges:[| Genome.range "x" ~lo:0. ~hi:1. |]
      ~objectives:[| { Wbga.name = "f"; maximise = true } |]
      ~rng:(Rng.create 17)
      ~evaluate:(fun p -> if p.(0) < 0.5 then None else Some [| p.(0) |])
      ()
  in
  Alcotest.(check int) "evals = archive + failures" 30
    (Array.length r.Wbga.archive + r.Wbga.failures)

let test_nsga2_front_quality () =
  let r =
    Nsga2.run
      ~config:{ Nsga2.default_config with Nsga2.population_size = 30; generations = 30 }
      ~param_ranges:[| Genome.range "x" ~lo:0. ~hi:1. |]
      ~maximise:[| true; true |]
      ~rng:(Rng.create 19)
      ~evaluate:(fun p -> Some [| p.(0); 1. -. (p.(0) *. p.(0)) |])
      ()
  in
  Alcotest.(check bool) "front nonempty" true (Array.length r.Nsga2.front > 5);
  (* every front point lies on the true front: f2 = 1 - f1^2 *)
  Array.iter
    (fun (e : Nsga2.entry) ->
      check_float ~eps:1e-6 "on analytic front"
        (1. -. (e.Nsga2.objectives.(0) ** 2.))
        e.Nsga2.objectives.(1))
    r.Nsga2.front

let suites =
  [
    ( "ga.genome",
      [
        Alcotest.test_case "decode" `Quick test_genome_decode;
        Alcotest.test_case "weights normalised (eq 4)" `Quick
          test_genome_weights_normalised;
        Alcotest.test_case "zero weights" `Quick test_genome_zero_weights_uniform;
        Alcotest.test_case "log range" `Quick test_genome_log_range;
        Alcotest.test_case "roundtrip" `Quick test_genome_roundtrip;
        Alcotest.test_case "bad range" `Quick test_genome_bad_range;
      ] );
    ( "ga.operators",
      [
        Alcotest.test_case "tournament" `Quick test_tournament_prefers_best;
        Alcotest.test_case "roulette" `Quick test_roulette_proportional;
        Alcotest.test_case "one-point" `Quick test_one_point_crossover;
        QCheck_alcotest.to_alcotest prop_crossover_in_bounds;
        QCheck_alcotest.to_alcotest prop_mutation_in_bounds;
      ] );
    ( "ga.fitness",
      [
        Alcotest.test_case "normalisation (eq 5)" `Quick test_fitness_normalisation;
        Alcotest.test_case "degenerate bounds" `Quick test_fitness_degenerate;
        Alcotest.test_case "non-finite objectives" `Quick test_fitness_nonfinite;
      ] );
    ( "ga.pareto",
      [
        Alcotest.test_case "dominates" `Quick test_dominates;
        Alcotest.test_case "front_2d known" `Quick test_front_2d_known;
        Alcotest.test_case "duplicates kept" `Quick test_front_2d_duplicates_kept;
        QCheck_alcotest.to_alcotest prop_front_matches_naive;
        QCheck_alcotest.to_alcotest prop_front_mutually_nondominated;
        Alcotest.test_case "crowding" `Quick test_crowding_boundaries_infinite;
        Alcotest.test_case "hypervolume" `Quick test_hypervolume_known;
        QCheck_alcotest.to_alcotest prop_hypervolume_monotone;
      ] );
    ( "ga.engine",
      [
        Alcotest.test_case "optimises sphere" `Quick test_ga_optimises_sphere;
        Alcotest.test_case "deterministic" `Quick test_ga_deterministic;
      ] );
    ( "ga.wbga",
      [
        Alcotest.test_case "finds tradeoff" `Quick test_wbga_finds_tradeoff;
        Alcotest.test_case "failures counted" `Quick test_wbga_failures_counted;
      ] );
    ( "ga.nsga2",
      [ Alcotest.test_case "front quality" `Quick test_nsga2_front_quality ] );
  ]
