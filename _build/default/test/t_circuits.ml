(* Tests for the yield_circuits library: the OTA, its testbench, and the
   gm-C filter. *)

module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Filter = Yield_circuits.Filter
module Mosfet = Yield_spice.Mosfet
module Circuit = Yield_spice.Circuit
module Dcop = Yield_spice.Dcop
module Measure = Yield_spice.Measure
module Variation = Yield_process.Variation
module Rng = Yield_stats.Rng

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

(* --- OTA parameters --- *)

let test_param_roundtrip () =
  let p = Ota.default_params in
  let p2 = Ota.params_of_array (Ota.params_to_array p) in
  Alcotest.(check bool) "roundtrip" true (p = p2)

let test_param_ranges_match_table1 () =
  Alcotest.(check int) "8 parameters" 8 (Array.length Ota.param_ranges);
  Array.iter
    (fun (r : Yield_ga.Genome.range) ->
      if r.Yield_ga.Genome.name.[0] = 'w' then begin
        check_float "w lo" 10e-6 r.Yield_ga.Genome.lo;
        check_float "w hi" 60e-6 r.Yield_ga.Genome.hi
      end
      else begin
        check_float "l lo" 0.35e-6 r.Yield_ga.Genome.lo;
        check_float "l hi" 4e-6 r.Yield_ga.Genome.hi
      end)
    Ota.param_ranges

let test_clamp_params () =
  let p = Ota.clamp_params { Ota.default_params with Ota.w1 = 1.; l1 = 0. } in
  check_float "w clamped" Ota.w_max p.Ota.w1;
  check_float "l clamped" Ota.l_min p.Ota.l1

let test_mirror_factor () =
  let p = { Ota.default_params with Ota.w2 = 60e-6; l2 = 1e-6; w1 = 30e-6; l1 = 1e-6 } in
  check_float "B" 2. (Ota.mirror_factor p)

(* --- DC health --- *)

let tb_circuit params =
  let c, out = Tb.build params in
  match Dcop.solve c with
  | Ok op -> (c, out, op)
  | Error e -> Alcotest.failf "testbench dcop failed: %s" (Dcop.error_to_string e)

let test_ota_bias_point () =
  let c, _, op = tb_circuit Ota.default_params in
  (* output settles near the input common mode thanks to the DC loop *)
  let vout = Dcop.voltage_by_name op c "out" in
  check_float ~eps:0.05 "out near vcm" Tb.default_conditions.Tb.vcm vout;
  (* the mirrors must copy the bias current *)
  let m9 = Dcop.mos_op op "x1.M9" in
  check_float ~eps:0.02 "bias current" Ota.bias_current m9.Mosfet.ids;
  let m10 = Dcop.mos_op op "x1.M10" in
  check_float ~eps:0.10 "tail current" Ota.bias_current m10.Mosfet.ids;
  (* differential pair splits the tail evenly *)
  let m1 = Dcop.mos_op op "x1.M1" in
  let m2 = Dcop.mos_op op "x1.M2" in
  check_float ~eps:0.1 "balanced pair" m1.Mosfet.ids m2.Mosfet.ids

let test_ota_no_cutoff_devices () =
  let _, _, op = tb_circuit Ota.default_params in
  List.iter
    (fun (name, mos) ->
      if mos.Mosfet.region = Mosfet.Cutoff then
        Alcotest.failf "%s is in cutoff" name)
    op.Dcop.mos_ops

(* --- performance extraction --- *)

let test_evaluate_default () =
  match Tb.evaluate Ota.default_params with
  | None -> Alcotest.fail "evaluation failed"
  | Some perf ->
      Alcotest.(check bool) "plausible gain" true
        (perf.Tb.gain_db > 35. && perf.Tb.gain_db < 70.);
      Alcotest.(check bool) "plausible pm" true
        (perf.Tb.phase_margin_deg > 10. && perf.Tb.phase_margin_deg < 95.);
      Alcotest.(check bool) "fu above f3db" true
        (perf.Tb.unity_gain_hz > perf.Tb.f3db_hz);
      (* single-pole consistency: fu ~ gain_lin * f3db *)
      let gain_lin = 10. ** (perf.Tb.gain_db /. 20.) in
      check_float ~eps:0.2 "gbw consistency" (gain_lin *. perf.Tb.f3db_hz)
        perf.Tb.unity_gain_hz

let test_longer_output_l_raises_gain () =
  let base = Option.get (Tb.evaluate Ota.default_params) in
  let long_l =
    Option.get
      (Tb.evaluate { Ota.default_params with Ota.l2 = 4e-6; l3 = 4e-6 })
  in
  Alcotest.(check bool) "gain increases with output L" true
    (long_l.Tb.gain_db > base.Tb.gain_db +. 3.)

let test_bigger_mirror_factor_lowers_pm () =
  let small_b = Option.get (Tb.evaluate Ota.default_params) in
  let big_b =
    Option.get
      (Tb.evaluate
         { Ota.default_params with Ota.w2 = 60e-6; l2 = 0.35e-6; w1 = 10e-6; l1 = 2e-6 })
  in
  Alcotest.(check bool) "pm drops with mirror factor" true
    (big_b.Tb.phase_margin_deg < small_b.Tb.phase_margin_deg -. 10.);
  Alcotest.(check bool) "fu rises with mirror factor" true
    (big_b.Tb.unity_gain_hz > small_b.Tb.unity_gain_hz)

let test_feasibility_constraint () =
  let perf = Option.get (Tb.evaluate Ota.default_params) in
  Alcotest.(check bool) "default feasible" true
    (Tb.feasible Tb.default_conditions perf);
  let strict =
    { Tb.default_conditions with Tb.min_unity_gain_hz = 1e12 }
  in
  Alcotest.(check bool) "strict infeasible" false (Tb.feasible strict perf)

let test_evaluate_sampled_differs () =
  let rng = Rng.create 3 in
  let nominal = Option.get (Tb.evaluate Ota.default_params) in
  let sampled =
    Option.get
      (Tb.evaluate_sampled ~spec:Variation.default_spec ~rng Ota.default_params)
  in
  Alcotest.(check bool) "sampled moves" true
    (sampled.Tb.gain_db <> nominal.Tb.gain_db);
  Alcotest.(check bool) "sampled close" true
    (Float.abs (sampled.Tb.gain_db -. nominal.Tb.gain_db) < 3.)

let test_objectives_order () =
  let perf = Option.get (Tb.evaluate Ota.default_params) in
  let o = Tb.objectives perf in
  check_float "gain first" perf.Tb.gain_db o.(0);
  check_float "pm second" perf.Tb.phase_margin_deg o.(1)

(* --- filter --- *)

let amp = { Filter.gain_db = 53.; rout = 2.5e6 }

let test_gm_of_amp () =
  check_float ~eps:1e-9 "gm" (10. ** (53. /. 20.) /. 2.5e6) (Filter.gm_of_amp amp)

let good_caps = { Filter.c1 = 26e-12; c2 = 13e-12; c3 = 0.2e-12 }

let test_filter_response_shape () =
  match Filter.response amp good_caps with
  | None -> Alcotest.fail "filter solve failed"
  | Some bode ->
      let mags = Measure.magnitudes_db bode in
      check_float ~eps:0.05 "unity dc gain" 0. mags.(0);
      (* low-pass: last point well below dc *)
      Alcotest.(check bool) "rolls off" true
        (mags.(Array.length mags - 1) < -40.)

let test_filter_check () =
  match Filter.response amp good_caps with
  | None -> Alcotest.fail "filter solve failed"
  | Some bode ->
      let c = Filter.check Filter.default_spec bode in
      Alcotest.(check bool) "good caps meet mask" true c.Filter.meets_spec;
      let strict = { Filter.default_spec with Filter.atten_db = 80. } in
      let c2 = Filter.check strict bode in
      Alcotest.(check bool) "strict mask fails" false c2.Filter.meets_spec;
      Alcotest.(check bool) "margin negative" true (c2.Filter.stopband_margin_db < 0.)

let test_filter_q_scales_with_c2_over_c1 () =
  (* higher C2/C1 -> higher Q -> peaking *)
  let peaky = { Filter.c1 = 10e-12; c2 = 40e-12; c3 = 0.2e-12 } in
  match Filter.response amp peaky with
  | None -> Alcotest.fail "filter solve failed"
  | Some bode ->
      let mags = Measure.magnitudes_db bode in
      let peak = Array.fold_left Float.max neg_infinity mags in
      Alcotest.(check bool) "peaking present" true (peak > 2.)

let test_filter_optimise_finds_spec () =
  let r = Filter.optimise ~population:30 ~generations:40 amp Filter.default_spec (Rng.create 23) in
  Alcotest.(check bool) "meets spec" true r.Filter.best_check.Filter.meets_spec;
  Alcotest.(check int) "budget honoured" (30 * 40) r.Filter.evaluations

let test_filter_transistor_realisation () =
  match Filter.response_transistor Ota.default_params good_caps with
  | None -> Alcotest.fail "transistor filter failed to bias"
  | Some bode ->
      let mags = Measure.magnitudes_db bode in
      (* a working unity-gain low-pass: dc near 0 dB and rolling off *)
      Alcotest.(check bool) "dc gain near unity" true (Float.abs mags.(0) < 0.5);
      Alcotest.(check bool) "rolls off" true (mags.(Array.length mags - 1) < -30.)

let suites =
  [
    ( "circuits.ota",
      [
        Alcotest.test_case "param roundtrip" `Quick test_param_roundtrip;
        Alcotest.test_case "table 1 ranges" `Quick test_param_ranges_match_table1;
        Alcotest.test_case "clamp" `Quick test_clamp_params;
        Alcotest.test_case "mirror factor" `Quick test_mirror_factor;
        Alcotest.test_case "bias point" `Quick test_ota_bias_point;
        Alcotest.test_case "no cutoff devices" `Quick test_ota_no_cutoff_devices;
      ] );
    ( "circuits.testbench",
      [
        Alcotest.test_case "evaluate default" `Quick test_evaluate_default;
        Alcotest.test_case "gain vs output L" `Quick test_longer_output_l_raises_gain;
        Alcotest.test_case "pm vs mirror factor" `Quick
          test_bigger_mirror_factor_lowers_pm;
        Alcotest.test_case "feasibility" `Quick test_feasibility_constraint;
        Alcotest.test_case "sampled evaluation" `Quick test_evaluate_sampled_differs;
        Alcotest.test_case "objectives order" `Quick test_objectives_order;
      ] );
    ( "circuits.filter",
      [
        Alcotest.test_case "gm_of_amp" `Quick test_gm_of_amp;
        Alcotest.test_case "response shape" `Quick test_filter_response_shape;
        Alcotest.test_case "mask check" `Quick test_filter_check;
        Alcotest.test_case "q vs cap ratio" `Quick test_filter_q_scales_with_c2_over_c1;
        Alcotest.test_case "optimise finds spec" `Slow test_filter_optimise_finds_spec;
        Alcotest.test_case "transistor realisation" `Quick
          test_filter_transistor_realisation;
      ] );
  ]
