test/t_spice.ml: Alcotest Array Complex Float Printf QCheck QCheck_alcotest Random Yield_circuits Yield_spice
