test/t_process.ml: Alcotest Array Float List Option QCheck QCheck_alcotest Yield_circuits Yield_process Yield_spice Yield_stats
