test/t_circuits.ml: Alcotest Array Float List Option String Yield_circuits Yield_ga Yield_process Yield_spice Yield_stats
