test/test_main.ml: Alcotest List T_behavioural T_circuits T_circuits2 T_core T_extensions T_ga T_numeric T_process T_spice T_stats T_table T_tran
