test/t_ga.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Yield_ga Yield_stats
