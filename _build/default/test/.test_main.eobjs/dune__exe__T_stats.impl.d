test/t_stats.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Yield_stats
