test/t_table.ml: Alcotest Array Filename Float Fun List QCheck QCheck_alcotest Sys Yield_stats Yield_table
