test/t_tran.ml: Alcotest Array Float List Yield_numeric Yield_process Yield_spice
