test/t_numeric.ml: Alcotest Array Complex Float QCheck QCheck_alcotest Random Yield_numeric
