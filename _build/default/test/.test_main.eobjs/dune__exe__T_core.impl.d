test/t_core.ml: Alcotest Array Filename Float Fun Lazy List String Sys Yield_behavioural Yield_circuits Yield_core Yield_ga Yield_process
