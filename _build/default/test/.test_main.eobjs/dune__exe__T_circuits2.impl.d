test/t_circuits2.ml: Alcotest Array Complex Float Yield_circuits Yield_numeric Yield_process Yield_spice Yield_stats
