test/t_behavioural.ml: Alcotest Array Float Yield_behavioural Yield_circuits Yield_spice Yield_stats Yield_table
