test/t_extensions.ml: Alcotest Array Filename Float Fun List Option Stdlib String Sys Yield_behavioural Yield_circuits Yield_process Yield_stats Yield_table
